package core

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"messengers/internal/compile"
	"messengers/internal/lan"
	"messengers/internal/logical"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// distGVTEnv prepends WithDistributedGVT when MSGR_DIST_GVT=1, so the CI
// scale job (and anyone debugging) can run the entire core suite under the
// ring-reduction GVT protocol with no code changes. Prepended, not
// appended: a test that explicitly sets a GVT implementation still wins.
func distGVTEnv(opts []Option) []Option {
	if os.Getenv("MSGR_DIST_GVT") == "1" {
		return append([]Option{WithDistributedGVT()}, opts...)
	}
	return opts
}

// simSystem builds a simulated n-daemon system on a full-mesh daemon
// network.
func simSystem(t *testing.T, n int, opts ...Option) (*sim.Kernel, *System) {
	t.Helper()
	k := sim.New()
	cluster := lan.NewCluster(k, lan.DefaultCostModel(), n, lan.SPARC110)
	sys := NewSystem(NewSimEngine(cluster), FullMesh(n), distGVTEnv(opts)...)
	return k, sys
}

// runSim drains the kernel and fails on any recorded Messenger error.
func runSim(t *testing.T, k *sim.Kernel, sys *System) sim.Time {
	t.Helper()
	end := k.Run()
	for _, err := range sys.Errors() {
		t.Errorf("runtime error: %v", err)
	}
	if live := sys.Live(); live != 0 {
		t.Errorf("live work = %d after kernel drained", live)
	}
	return end
}

func register(t *testing.T, sys *System, name, src string) {
	t.Helper()
	prog, err := compile.Compile(name, src)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	sys.Register(prog)
}

func TestInjectAndPrint(t *testing.T) {
	k, sys := simSystem(t, 2)
	register(t, sys, "hello", `print("hello from", $address);`)
	if err := sys.Inject(1, "hello", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	out := sys.Output()
	if len(out) != 1 || out[0] != "hello from d1" {
		t.Errorf("output = %q", out)
	}
	if st := sys.TotalStats(); st.Finished != 1 {
		t.Errorf("finished = %d", st.Finished)
	}
}

func TestInjectUnknownScript(t *testing.T) {
	_, sys := simSystem(t, 1)
	if err := sys.Inject(0, "nope", nil); err == nil {
		t.Error("injecting an unregistered script should fail")
	}
	if err := sys.Inject(5, "nope", nil); err == nil {
		t.Error("injecting at an unknown daemon should fail")
	}
}

func TestCreateAllBuildsNodesOnAllNeighbors(t *testing.T) {
	k, sys := simSystem(t, 4)
	register(t, sys, "spread", `
		create(ALL);
		node.mark = $daemon;
	`)
	if err := sys.Inject(0, "spread", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	// Daemon 0's init gained 3 links; daemons 1..3 each gained one node
	// with mark set.
	if got := len(sys.Daemon(0).Store().Init().Links); got != 3 {
		t.Errorf("init links = %d, want 3", got)
	}
	for d := 1; d < 4; d++ {
		st := sys.Daemon(d).Store()
		if st.Len() != 2 { // init + created node
			t.Errorf("daemon %d has %d nodes, want 2", d, st.Len())
		}
		found := false
		for id := logical.NodeID(1); id <= 10 && !found; id++ {
			if n, ok := st.Node(id); ok && n != st.Init() {
				if n.Vars["mark"].AsInt() != int64(d) {
					t.Errorf("daemon %d mark = %v", d, n.Vars["mark"])
				}
				found = true
			}
		}
		if !found {
			t.Errorf("daemon %d has no created node", d)
		}
	}
	if st := sys.TotalStats(); st.Creates != 3 || st.Finished != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHopReplicationAndLastIdentity(t *testing.T) {
	// The Fig. 1(b) pattern: create a node, hop back over the same link,
	// then hop out again — $last must identify the single unnamed link.
	k, sys := simSystem(t, 2)
	register(t, sys, "shuttle", `
		create(ALL);          // now at the new node on d1
		hop(ll = $last);      // back at init on d0
		node.at_center = 1;
		hop(ll = $last);      // out to the worker node again
		node.at_worker = $daemon;
	`)
	if err := sys.Inject(0, "shuttle", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if v := sys.Daemon(0).Store().Init().Vars["at_center"]; v.AsInt() != 1 {
		t.Errorf("at_center = %v", v)
	}
	vars, ok := findNonInitNodeVars(sys, 1)
	if !ok || vars["at_worker"].AsInt() != 1 {
		t.Errorf("at_worker = %v (ok=%v)", vars, ok)
	}
	st := sys.TotalStats()
	if st.RemoteHops != 2 { // back and out (create transfer is not a hop)
		t.Errorf("remote hops = %d, want 2", st.RemoteHops)
	}
}

func findNonInitNodeVars(sys *System, daemon int) (map[string]value.Value, bool) {
	st := sys.Daemon(daemon).Store()
	for id := logical.NodeID(1); id <= logical.NodeID(st.Len()+4); id++ {
		if n, ok := st.Node(id); ok && n.Name != logical.InitName {
			return n.Vars, true
		}
	}
	return nil, false
}

func TestHopFanOutReplicates(t *testing.T) {
	// One Messenger hops along all links at once and increments a counter
	// at each destination.
	k, sys := simSystem(t, 5)
	register(t, sys, "fan", `
		create(ALL);
		node.seen = 1;
	`)
	if err := sys.Inject(0, "fan", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	count := 0
	for d := 1; d < 5; d++ {
		if vars, ok := findNonInitNodeVars(sys, d); ok && vars["seen"].AsInt() == 1 {
			count++
		}
	}
	if count != 4 {
		t.Errorf("replicas reached %d daemons, want 4", count)
	}
}

func TestMessengerDiesOnNoMatch(t *testing.T) {
	k, sys := simSystem(t, 2)
	register(t, sys, "lost", `
		hop(ll = "no_such_link");
		print("unreachable");
	`)
	if err := sys.Inject(0, "lost", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if len(sys.Output()) != 0 {
		t.Error("statements after a dead-end hop must not run")
	}
	if st := sys.TotalStats(); st.Died != 1 {
		t.Errorf("died = %d, want 1", st.Died)
	}
}

func TestDeleteRemovesLinksAndSingletonNodes(t *testing.T) {
	k, sys := simSystem(t, 2)
	register(t, sys, "deleter", `
		create(ln = "room"; ll = "corridor");
		hop(ll = "corridor");       // back to init
		delete(ll = "corridor");    // removes corridor; room becomes a singleton
		node.done = 1;
	`)
	if err := sys.Inject(0, "deleter", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	// The Messenger ends up in the room node just before it is deleted
	// with its last link... per delete semantics the Messenger moves to
	// the room and the corridor is gone.
	total := 0
	for d := 0; d < 2; d++ {
		total += sys.Daemon(d).Store().Len()
	}
	if total != 2 { // only the two init nodes survive
		t.Errorf("%d nodes remain, want 2 (room deleted as singleton)", total)
	}
	if st := sys.TotalStats(); st.Deletes == 0 {
		t.Error("no link deletions recorded")
	}
}

func TestNativeFunctions(t *testing.T) {
	k, sys := simSystem(t, 1)
	calls := 0
	sys.RegisterNative("double", func(ctx *NativeCtx, args []value.Value) (value.Value, error) {
		calls++
		ctx.Charge(100 * sim.Microsecond)
		if ctx.DaemonID() != 0 || ctx.NumDaemons() != 1 {
			t.Error("ctx daemon info wrong")
		}
		if ctx.Model() == nil {
			t.Error("sim engine should expose a cost model")
		}
		if ctx.HostSpec().Name != lan.SPARC110.Name {
			t.Errorf("host spec = %v", ctx.HostSpec())
		}
		ctx.SetNodeVar("native_was_here", value.Int(1))
		return value.Int(args[0].AsInt() * 2), nil
	})
	register(t, sys, "calls", `x = double(21); node.result = x;`)
	if err := sys.Inject(0, "calls", nil); err != nil {
		t.Fatal(err)
	}
	end := runSim(t, k, sys)
	if calls != 1 {
		t.Errorf("native called %d times", calls)
	}
	init := sys.Daemon(0).Store().Init()
	if init.Vars["result"].AsInt() != 42 || init.Vars["native_was_here"].AsInt() != 1 {
		t.Errorf("vars = %v", init.Vars)
	}
	if end < 100*sim.Microsecond {
		t.Errorf("charged native cost not reflected in sim time: %v", end)
	}
}

func TestUnknownNativeDestroysMessenger(t *testing.T) {
	k, sys := simSystem(t, 1)
	register(t, sys, "bad", `x = no_such_native();`)
	if err := sys.Inject(0, "bad", nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if errs := sys.Errors(); len(errs) != 1 || !strings.Contains(errs[0].Error(), "unknown native") {
		t.Errorf("errors = %v", errs)
	}
	if sys.Live() != 0 {
		t.Error("failed messenger still counted live")
	}
}

func TestRuntimeErrorRecorded(t *testing.T) {
	k, sys := simSystem(t, 1)
	register(t, sys, "div", `x = 1 / 0;`)
	if err := sys.Inject(0, "div", nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if errs := sys.Errors(); len(errs) != 1 || !strings.Contains(errs[0].Error(), "division by zero") {
		t.Errorf("errors = %v", errs)
	}
}

func TestInjectionVariables(t *testing.T) {
	k, sys := simSystem(t, 1)
	register(t, sys, "param", `node.sum = a + b;`)
	err := sys.Inject(0, "param", map[string]value.Value{
		"a": value.Int(40), "b": value.Int(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if v := sys.Daemon(0).Store().Init().Vars["sum"]; v.AsInt() != 42 {
		t.Errorf("sum = %v", v)
	}
}

// TestFigure3ManagerWorker runs the paper's Figure 3 program: a single
// script whose replicas become self-coordinating workers, with the task
// pool and result deposit held in node variables of the central init node.
func TestFigure3ManagerWorker(t *testing.T) {
	const nDaemons = 5
	const nTasks = 23
	k, sys := simSystem(t, nDaemons)

	sys.RegisterNative("next_task", func(ctx *NativeCtx, _ []value.Value) (value.Value, error) {
		next := ctx.NodeVar("next").AsInt()
		if next >= nTasks {
			return value.Nil(), nil
		}
		ctx.SetNodeVar("next", value.Int(next+1))
		return value.Int(next), nil
	})
	sys.RegisterNative("compute", func(ctx *NativeCtx, args []value.Value) (value.Value, error) {
		ctx.Charge(1 * sim.Millisecond)
		return value.Int(args[0].AsInt() * args[0].AsInt()), nil
	})
	sys.RegisterNative("deposit", func(ctx *NativeCtx, args []value.Value) (value.Value, error) {
		ctx.SetNodeVar("acc", value.Int(ctx.NodeVar("acc").AsInt()+args[0].AsInt()))
		ctx.SetNodeVar("count", value.Int(ctx.NodeVar("count").AsInt()+1))
		return value.Nil(), nil
	})

	register(t, sys, "manager_worker", `
		create(ALL);
		hop(ll = $last);
		while ((task = next_task()) != nil) {
			hop(ll = $last);
			res = compute(task);
			hop(ll = $last);
			deposit(res);
		}
	`)
	if err := sys.Inject(0, "manager_worker", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)

	init := sys.Daemon(0).Store().Init()
	wantSum := int64(0)
	for i := int64(0); i < nTasks; i++ {
		wantSum += i * i
	}
	if got := init.Vars["acc"].AsInt(); got != wantSum {
		t.Errorf("sum of squares = %d, want %d", got, wantSum)
	}
	if got := init.Vars["count"].AsInt(); got != nTasks {
		t.Errorf("deposited %d results, want %d", got, nTasks)
	}
	if got := init.Vars["next"].AsInt(); got != nTasks {
		t.Errorf("tasks handed out = %d", got)
	}
	st := sys.TotalStats()
	if st.Finished != nDaemons-1 {
		t.Errorf("workers finished = %d, want %d", st.Finished, nDaemons-1)
	}
}

func TestSimIsDeterministic(t *testing.T) {
	run := func() (sim.Time, Stats, []string) {
		k, sys := simSystem(t, 4)
		sys.RegisterNative("work", func(ctx *NativeCtx, args []value.Value) (value.Value, error) {
			ctx.Charge(sim.Time(args[0].AsInt()) * sim.Microsecond)
			return value.Nil(), nil
		})
		register(t, sys, "det", `
			create(ALL);
			work($daemon * 100 + 50);
			hop(ll = $last);
			node.done = node.done + 1;
			print("done", $daemon);
		`)
		if err := sys.Inject(0, "det", nil); err != nil {
			t.Fatal(err)
		}
		end := runSim(t, k, sys)
		return end, sys.TotalStats(), sys.Output()
	}
	t1, s1, o1 := run()
	for i := 0; i < 5; i++ {
		t2, s2, o2 := run()
		if t1 != t2 || s1 != s2 {
			t.Fatalf("nondeterministic: %v/%+v vs %v/%+v", t1, s1, t2, s2)
		}
		if fmt.Sprint(o1) != fmt.Sprint(o2) {
			t.Fatalf("nondeterministic output: %v vs %v", o1, o2)
		}
	}
}

func TestBuildNetworkAndVirtualHop(t *testing.T) {
	k, sys := simSystem(t, 3)
	spec := NetSpec{
		Nodes: []NetNode{
			{Name: "a", Daemon: 0}, {Name: "b", Daemon: 1}, {Name: "c", Daemon: 2},
		},
		Links: []NetLink{
			{A: "a", B: "b", Name: "ab", Dir: 1},
			{A: "b", B: "c", Name: "bc", Dir: 1},
		},
	}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}
	register(t, sys, "walk", `
		hop(ll = "ab", ldir = +);
		node.visited = node.visited + 1;
		hop(ll = "bc", ldir = +);
		node.visited = node.visited + 1;
		hop(ln = "init", ll = virtual);
		node.home = 1;
	`)
	if err := sys.InjectAt(0, "walk", "a", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if vars, ok := sys.ReadNodeVars(1, "b"); !ok || vars["visited"].AsInt() != 1 {
		t.Errorf("b not visited: %v", vars)
	}
	if vars, ok := sys.ReadNodeVars(2, "c"); !ok || vars["visited"].AsInt() != 1 {
		t.Errorf("c not visited: %v", vars)
	}
	// Virtual hop lands at daemon 2's local init.
	if v := sys.Daemon(2).Store().Init().Vars["home"]; v.AsInt() != 1 {
		t.Errorf("virtual hop to init failed: %v", v)
	}
}

func TestBuildNetworkValidation(t *testing.T) {
	_, sys := simSystem(t, 1)
	if err := sys.BuildNetwork(NetSpec{Nodes: []NetNode{{Name: "x", Daemon: 5}}}); err == nil {
		t.Error("bad daemon should fail")
	}
	if err := sys.BuildNetwork(NetSpec{Nodes: []NetNode{{Name: "x"}, {Name: "x"}}}); err == nil {
		t.Error("duplicate names should fail")
	}
	if err := sys.BuildNetwork(NetSpec{Links: []NetLink{{A: "p", B: "q"}}}); err == nil {
		t.Error("unknown link endpoints should fail")
	}
}

func TestDirectedRingTraversal(t *testing.T) {
	// A 4-daemon directed ring in the logical network: a Messenger walks
	// forward around it exactly once.
	const n = 4
	k, sys := simSystem(t, n)
	spec := NetSpec{}
	for i := 0; i < n; i++ {
		spec.Nodes = append(spec.Nodes, NetNode{Name: fmt.Sprintf("r%d", i), Daemon: i})
	}
	for i := 0; i < n; i++ {
		spec.Links = append(spec.Links, NetLink{
			A: fmt.Sprintf("r%d", i), B: fmt.Sprintf("r%d", (i+1)%n), Name: "ring", Dir: 1,
		})
	}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}
	register(t, sys, "rover", `
		for (i = 0; i < 4; i++) {
			node.hits = node.hits + 1;
			hop(ll = "ring", ldir = +);
		}
	`)
	if err := sys.InjectAt(0, "rover", "r0", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	for i := 0; i < n; i++ {
		vars, ok := sys.ReadNodeVars(i, fmt.Sprintf("r%d", i))
		if !ok || vars["hits"].AsInt() != 1 {
			t.Errorf("r%d hits = %v", i, vars["hits"])
		}
	}
}
