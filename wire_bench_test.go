package messengers

// Microbenchmarks of the wire layer: what one hop costs on the real
// (in-process) engine and what encoding one Messenger-carrying message
// costs. Run with -benchmem; the allocs/op of BenchmarkWireHop is the
// headline number the pooled wire layer is accountable to.

import (
	"testing"

	"messengers/internal/core"
	"messengers/internal/value"
	"messengers/internal/vm"
)

func benchHopMsg(mvm *vm.VM, snap []byte) *core.Msg {
	return &core.Msg{
		Kind:     core.MsgMessenger,
		From:     0,
		ProgHash: mvm.Program().Hash(),
		Snapshot: snap,
		MsgrID:   1,
		LVT:      1.5,
		DestNode: 7,
		Last:     "x",
	}
}

// wireBenchMsg builds a realistic Messenger-carrying message: a VM paused
// mid-hop with a 64x64 matrix payload in its variable area.
func wireBenchVM(b *testing.B) (*vm.VM, []byte) {
	b.Helper()
	prog, err := compileBench("wirebench", `
		blk = payload;
		hop(ll = "x");
		y = 1;
	`)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(prog, map[string]value.Value{"payload": value.Matrix(value.NewMat(64, 64))})
	if _, err := m.Run(discardHost{}, 0); err != nil {
		b.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	return m, snap
}

// BenchmarkWireEncode measures serializing one Messenger-carrying message
// to wire bytes (snapshot + header fields), the per-message cost of every
// remote hop on the TCP engine and of wire-size accounting everywhere.
func BenchmarkWireEncode(b *testing.B) {
	mvm, snap := wireBenchVM(b)
	msg := benchHopMsg(mvm, snap)
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(msg.Encode())
	}
	b.SetBytes(int64(n))
}

// BenchmarkWireHop measures the full hop path between two daemons on the
// real (goroutine) engine: VM state transfer, message construction,
// delivery, and resumption. allocs/op is per round trip (two hops).
func BenchmarkWireHop(b *testing.B) {
	sys, err := NewRealSystem(Config{Daemons: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	err = sys.CompileAndRegister("wirehop", `
		blk = payload;
		for (i = 0; i < hops; i++) { hop(ll = $last); }
	`)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.CompileAndRegister("mklink", `create(ALL);`); err != nil {
		b.Fatal(err)
	}
	if err := sys.Inject(0, "mklink", nil); err != nil {
		b.Fatal(err)
	}
	sys.Wait()
	b.ReportAllocs()
	b.ResetTimer()
	err = sys.Inject(0, "wirehop", map[string]Value{
		"hops":    IntValue(int64(2 * b.N)),
		"payload": MatrixValue(NewMat(16, 16)),
	})
	if err != nil {
		b.Fatal(err)
	}
	sys.Wait()
	b.StopTimer()
	if errs := sys.Errors(); len(errs) > 0 {
		b.Fatal(errs[0])
	}
}
