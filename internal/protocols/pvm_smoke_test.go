package protocols

import (
	"testing"
)

// Clean-run smoke tests for the PVM baselines through the harness: each
// protocol must decide and pass its checker, and the cost accounting must
// see traffic.

func TestPVMCleanRuns(t *testing.T) {
	for _, proto := range Protocols {
		for _, seed := range []uint64{1, 2, 3} {
			res, err := Run(RunConfig{
				Protocol: proto, Impl: ImplPVM, Engine: EngineSim,
				Nemesis: NemesisNone, Seed: seed,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", proto, seed, err)
			}
			if res.Failed() {
				t.Fatalf("%s seed %d failed: decided=%v err=%q violations=%+v",
					proto, seed, res.Decided, res.Err, res.Violations)
			}
			if res.Cost.Hops == 0 || res.Cost.NetMsgs == 0 {
				t.Errorf("%s seed %d: empty cost accounting: %+v", proto, seed, res.Cost)
			}
		}
	}
}

// The Messenger implementations through the same harness path.
func TestMsgrCleanRuns(t *testing.T) {
	for _, proto := range Protocols {
		res, err := Run(RunConfig{
			Protocol: proto, Impl: ImplMessengers, Engine: EngineSim,
			Nemesis: NemesisNone, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if res.Failed() {
			t.Fatalf("%s failed: decided=%v err=%q violations=%+v",
				proto, res.Decided, res.Err, res.Violations)
		}
		if res.Cost.Hops == 0 || res.Cost.NetMsgs == 0 {
			t.Errorf("%s: empty cost accounting: %+v", proto, res.Cost)
		}
	}
}
