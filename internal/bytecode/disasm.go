package bytecode

import (
	"fmt"
	"strings"
)

// Disassemble renders the program as readable assembly, one function per
// section, for the msl tool and debugging.
func (p *Program) Disassemble() string {
	return p.disassemble(false, false)
}

// DisassembleDepths renders the assembly with the verifier's inferred
// per-PC operand stack depth in a column before each instruction ("-" for
// unreachable code) and each function's maximum depth in its header. The
// program must be Verified; unverified programs render like Disassemble.
func (p *Program) DisassembleDepths() string {
	return p.disassemble(true, false)
}

// DisassembleKinds renders the assembly with both verifier columns: the
// per-PC stack depth and the kind-flow proof for every live operand stack
// slot on entry to the instruction, bottom to top ("any" marks a slot the
// analysis could not narrow — the VM keeps its dynamic guards there).
// This is what msl vet prints.
func (p *Program) DisassembleKinds() string {
	return p.disassemble(true, true)
}

func (p *Program) disassemble(depths, kinds bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q  hash=%s\n", p.Name, p.Hash())
	for i, c := range p.Consts {
		fmt.Fprintf(&b, "  const[%d] = %s\n", i, c.String())
	}
	for i, n := range p.Names {
		fmt.Fprintf(&b, "  name[%d] = %s\n", i, n)
	}
	depths = depths && p.verified
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		label := f.Name
		if fi == 0 {
			label = "<main>"
		}
		fmt.Fprintf(&b, "func %d %s (params=%d locals=%d", fi, label, f.NumParams, f.NumLocals)
		if depths {
			fmt.Fprintf(&b, " maxstack=%d", p.MaxStack(fi))
		}
		b.WriteString(")\n")
		for pc, ins := range f.Code {
			if depths {
				if d := p.StackDepth(fi, pc); d >= 0 {
					fmt.Fprintf(&b, "  %4d [%3d]", pc, d)
					if kinds {
						fmt.Fprintf(&b, " %-18s", p.kindColumn(fi, pc, d))
					}
					fmt.Fprintf(&b, "  %s", p.instrString(ins))
				} else {
					fmt.Fprintf(&b, "  %4d [  -]", pc)
					if kinds {
						fmt.Fprintf(&b, " %-18s", "")
					}
					fmt.Fprintf(&b, "  %s", p.instrString(ins))
				}
			} else {
				fmt.Fprintf(&b, "  %4d  %s", pc, p.instrString(ins))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// kindColumn renders the proven kinds of the d live stack slots on entry
// to Funcs[fi].Code[pc], bottom to top.
func (p *Program) kindColumn(fi, pc, d int) string {
	var b strings.Builder
	b.WriteByte('(')
	for j := 0; j < d; j++ {
		if j > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.SlotKind(fi, pc, j).String())
	}
	b.WriteByte(')')
	return b.String()
}

func (p *Program) instrString(ins Instr) string {
	name := func(i int32) string {
		if i >= 0 && int(i) < len(p.Names) {
			return p.Names[i]
		}
		return fmt.Sprintf("?%d", i)
	}
	switch ins.Op {
	case OpConst:
		if ins.A >= 0 && int(ins.A) < len(p.Consts) {
			return fmt.Sprintf("const %s", p.Consts[ins.A].String())
		}
		return fmt.Sprintf("const ?%d", ins.A)
	case OpLoadM, OpStoreM, OpLoadN, OpStoreN, OpLoadNet:
		return fmt.Sprintf("%s %s", ins.Op, name(ins.A))
	case OpLoadL, OpStoreL:
		return fmt.Sprintf("%s slot%d", ins.Op, ins.A)
	case OpJmp, OpJz:
		return fmt.Sprintf("%s -> %d", ins.Op, ins.A)
	case OpArr:
		return fmt.Sprintf("arr %d", ins.A)
	case OpCallFunc:
		fname := fmt.Sprintf("?%d", ins.A)
		if ins.A >= 0 && int(ins.A) < len(p.Funcs) {
			fname = p.Funcs[ins.A].Name
		}
		return fmt.Sprintf("callf %s argc=%d", fname, ins.B)
	case OpCallNative:
		return fmt.Sprintf("calln %s argc=%d", name(ins.A), ins.B)
	case OpHop, OpDelete:
		return fmt.Sprintf("%s arms=%d", ins.Op, ins.A)
	case OpCreate:
		all := ""
		if ins.B != 0 {
			all = " ALL"
		}
		return fmt.Sprintf("create arms=%d%s", ins.A, all)
	default:
		return ins.Op.String()
	}
}
