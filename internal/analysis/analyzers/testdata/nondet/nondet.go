// Package nondet contains the same violations as the simdeterminism
// testdata but is analyzed under a transport path, where they are legal.
package nondet

import "time"

func wallclockIsFineHere() int64 {
	return time.Now().UnixNano()
}

func mapsAreFineHere(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
