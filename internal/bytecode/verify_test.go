package bytecode

import (
	"strings"
	"testing"

	"messengers/internal/value"
)

func validProgram() *Program {
	return &Program{
		Name:   "v",
		Consts: []value.Value{value.Int(1)},
		Names:  []string{"x"},
		Funcs: []FuncInfo{
			{Name: "<main>", Code: []Instr{{Op: OpConst}, {Op: OpStoreM}, {Op: OpEnd}}},
			{Name: "f", NumParams: 1, NumLocals: 2, Code: []Instr{{Op: OpLoadL}, {Op: OpRet}}},
		},
	}
}

func TestValidateAcceptsValid(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
		want   string
	}{
		{"no funcs", func(p *Program) { p.Funcs = nil }, "no main body"},
		{"empty code", func(p *Program) { p.Funcs[0].Code = nil }, "empty code"},
		{"const oob", func(p *Program) { p.Funcs[0].Code[0].A = 5 }, "constant index"},
		{"const negative", func(p *Program) { p.Funcs[0].Code[0].A = -1 }, "constant index"},
		{"name oob", func(p *Program) { p.Funcs[0].Code[1].A = 9 }, "name index"},
		{"local oob", func(p *Program) { p.Funcs[1].Code[0].A = 2 }, "local slot"},
		{"params exceed locals", func(p *Program) { p.Funcs[1].NumParams = 3 }, "invalid"},
		{"jump oob", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpJmp, A: 99}
		}, "jump target"},
		{"jump negative", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpJz, A: -2}
		}, "jump target"},
		{"callfunc main", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCallFunc, A: 0}
		}, "function index"},
		{"callfunc oob", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCallFunc, A: 7}
		}, "function index"},
		{"callfunc argc", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCallFunc, A: 1, B: 3}
		}, "argc"},
		{"hop zero arms", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpHop, A: 0}
		}, "arm count"},
		{"create huge arms", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCreate, A: 1 << 20}
		}, "arm count"},
		{"negative argc native", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCallNative, A: 0, B: -1}
		}, "negative argc"},
		{"arr negative", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpArr, A: -1}
		}, "element count"},
		{"unknown op", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: Op(99)}
		}, "unknown opcode"},
		// Abstract-interpretation rejections: structurally fine programs
		// whose stack discipline is broken.
		{"pop underflow", func(p *Program) {
			p.Funcs[0].Code = []Instr{{Op: OpPop}, {Op: OpEnd}}
		}, "stack underflow"},
		{"ret underflow", func(p *Program) {
			p.Funcs[1].Code = []Instr{{Op: OpRet}}
		}, "stack underflow"},
		{"hop underflow", func(p *Program) {
			p.Funcs[0].Code = []Instr{{Op: OpHop, A: 1}, {Op: OpEnd}}
		}, "stack underflow"},
		{"unbalanced merge", func(p *Program) {
			// One branch arm pushes a value the other does not, so the merge
			// point would have a path-dependent stack depth.
			p.Funcs[0].Code = []Instr{
				{Op: OpConst},    // 1
				{Op: OpJz, A: 3}, // 0, branches to 3
				{Op: OpConst},    // 1, falls into 3
				{Op: OpStoreM},   // merge at conflicting depths
				{Op: OpEnd},
			}
		}, "inconsistent stack depth"},
		{"hop above statement boundary", func(p *Program) {
			// A fourth operand lingers beneath the hop's single arm: the hop
			// is not at a statement boundary.
			p.Funcs[0].Code = []Instr{
				{Op: OpConst}, {Op: OpConst}, {Op: OpConst}, {Op: OpConst},
				{Op: OpHop, A: 1},
				{Op: OpEnd},
			}
		}, "operands left beneath its arms"},
		{"create above statement boundary", func(p *Program) {
			p.Funcs[0].Code = []Instr{
				{Op: OpConst},
				{Op: OpConst}, {Op: OpConst}, {Op: OpConst},
				{Op: OpConst}, {Op: OpConst}, {Op: OpConst},
				{Op: OpCreate, A: 1},
				{Op: OpEnd},
			}
		}, "operands left beneath its arms"},
		{"calln argc beyond depth", func(p *Program) {
			p.Funcs[0].Code = []Instr{
				{Op: OpConst},
				{Op: OpCallNative, A: 0, B: 2},
				{Op: OpPop},
				{Op: OpEnd},
			}
		}, "exceeds stack depth"},
		{"falls off end", func(p *Program) {
			p.Funcs[0].Code = []Instr{{Op: OpConst}, {Op: OpPop}}
		}, "falls off end"},
		{"jump to code length", func(p *Program) {
			// Branching one past the last instruction is falling off the end
			// with extra steps; the verifier demands in-range targets.
			p.Funcs[0].Code = []Instr{{Op: OpJmp, A: 2}, {Op: OpEnd}}
		}, "jump target"},
	}
	for _, tc := range cases {
		p := validProgram()
		tc.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: should be rejected", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeRunsValidation(t *testing.T) {
	p := validProgram()
	p.Funcs[0].Code[0].A = 99 // invalid constant index, structurally fine
	if _, err := Decode(p.Encode()); err == nil {
		t.Error("Decode must validate operands")
	}
}

func TestValidateBoundsStackDepth(t *testing.T) {
	// A straight-line dup chain grows the stack by one per instruction;
	// past maxStackDepth the verifier must refuse rather than admit a
	// program whose snapshot size is unbounded by static analysis.
	p := validProgram()
	code := []Instr{{Op: OpConst}}
	for i := 0; i <= maxStackDepth; i++ {
		code = append(code, Instr{Op: OpDup})
	}
	code = append(code, Instr{Op: OpEnd})
	p.Funcs[0].Code = code
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "exceeds maximum") {
		t.Errorf("unbounded dup chain: err = %v", err)
	}
}

func TestValidateBoundsLocals(t *testing.T) {
	// Frame locals are allocated eagerly on entry — New allocates the main
	// frame before any instruction runs — so a decoded header must not be
	// able to demand an arbitrary allocation. Found by fuzzing.
	p := validProgram()
	p.Funcs[0].NumLocals = maxLocals + 1
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "exceeds the limit") {
		t.Errorf("oversized locals: err = %v", err)
	}
	p.Funcs[0].NumLocals = maxLocals
	if err := p.Validate(); err != nil {
		t.Errorf("locals at the limit rejected: %v", err)
	}
}

func TestVerifierMetadata(t *testing.T) {
	p := validProgram()
	if p.Verified() {
		t.Error("fresh program must not report verified")
	}
	if p.StackDepth(0, 0) != -1 || p.MaxStack(0) != -1 {
		t.Error("unverified metadata must be -1")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Verified() {
		t.Error("Validate must mark the program verified")
	}
	// <main>: const (0→1), storem (1→0), end.
	for pc, want := range []int{0, 1, 0} {
		if got := p.StackDepth(0, pc); got != want {
			t.Errorf("StackDepth(0, %d) = %d, want %d", pc, got, want)
		}
	}
	if got := p.MaxStack(0); got != 1 {
		t.Errorf("MaxStack(0) = %d, want 1", got)
	}
	// Out-of-range queries stay -1 instead of panicking.
	if p.StackDepth(0, 99) != -1 || p.StackDepth(5, 0) != -1 || p.MaxStack(9) != -1 {
		t.Error("out-of-range metadata queries must be -1")
	}
	// Mutating and re-validating recomputes; a now-invalid program loses
	// its verified status.
	p.Funcs[0].Code[0] = Instr{Op: OpPop}
	if err := p.Validate(); err == nil {
		t.Fatal("mutated program should fail")
	}
	if p.Verified() || p.StackDepth(0, 0) != -1 {
		t.Error("failed Validate must clear verified state")
	}
}

func TestVerifierUnreachableCode(t *testing.T) {
	// Dead code after an unconditional jump is accepted (the compiler can
	// emit it) but reported unreachable in the metadata.
	p := validProgram()
	p.Funcs[0].Code = []Instr{
		{Op: OpJmp, A: 2},
		{Op: OpNop}, // unreachable
		{Op: OpEnd},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.StackDepth(0, 1) != -1 {
		t.Errorf("unreachable pc depth = %d, want -1", p.StackDepth(0, 1))
	}
	if p.StackDepth(0, 2) != 0 {
		t.Errorf("reachable pc depth = %d, want 0", p.StackDepth(0, 2))
	}
	asm := p.DisassembleDepths()
	if !strings.Contains(asm, "maxstack=") {
		t.Errorf("DisassembleDepths missing maxstack header:\n%s", asm)
	}
	if !strings.Contains(asm, "[  -]") {
		t.Errorf("DisassembleDepths missing unreachable marker:\n%s", asm)
	}
}

func TestVerifierHopAtDepthInsideCall(t *testing.T) {
	// The statement-boundary rule is relative to function entry, not an
	// absolute empty stack: a hop inside a callee is legal even though the
	// shared operand stack still holds the caller's pending operands.
	p := &Program{
		Name:   "deep",
		Consts: []value.Value{value.Int(1), value.Str("x")},
		Names:  []string{"x"},
		Funcs: []FuncInfo{
			{Name: "<main>", Code: []Instr{
				{Op: OpConst}, // pending operand under the call (1 + f(1))
				{Op: OpConst}, // the argument
				{Op: OpCallFunc, A: 1, B: 1},
				{Op: OpAdd},
				{Op: OpStoreM},
				{Op: OpEnd},
			}},
			{Name: "f", NumParams: 1, NumLocals: 1, Code: []Instr{
				{Op: OpConst, A: 1}, {Op: OpConst, A: 1}, {Op: OpConst, A: 1},
				{Op: OpHop, A: 1},
				{Op: OpConst},
				{Op: OpRet},
			}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Errorf("hop at callee statement boundary rejected: %v", err)
	}
}
