package pvm

import (
	"strings"
	"sync/atomic"
	"testing"

	"messengers/internal/lan"
	"messengers/internal/matmul"
	"messengers/internal/sim"
)

// simMachine builds a simulated PVM machine on n hosts. The cleanup shuts
// the kernel down.
func simMachine(t *testing.T, n int) (*sim.Kernel, *Machine) {
	t.Helper()
	k := sim.New()
	t.Cleanup(k.Shutdown)
	cluster := lan.NewCluster(k, lan.DefaultCostModel(), n, lan.SPARC110)
	return k, NewSimMachine(cluster)
}

func checkErrs(t *testing.T, m *Machine) {
	t.Helper()
	for _, err := range m.Errors() {
		t.Errorf("task error: %v", err)
	}
}

func TestSendRecvRoundTripSim(t *testing.T) {
	var got int64
	var gotStr string
	var gotD float64
	k2, m2 := simMachine(t, 2)
	recvTID := m2.SpawnAt("receiver", 1, func(p *Proc) {
		b := p.Recv(AnySource, 7)
		got = p.UpkInt(b)
		gotD = p.UpkDouble(b)
		gotStr = p.UpkStr(b)
		if b.Sender() == 0 || b.Tag() != 7 {
			t.Errorf("sender/tag = %d/%d", b.Sender(), b.Tag())
		}
	})
	m2.SpawnAt("sender", 0, func(p *Proc) {
		p.InitSend()
		p.PkInt(42)
		p.PkDouble(2.5)
		p.PkStr("hello")
		p.Send(recvTID, 7)
	})
	k2.Run()
	checkErrs(t, m2)
	if got != 42 || gotD != 2.5 || gotStr != "hello" {
		t.Errorf("got %d %v %q", got, gotD, gotStr)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	k, m := simMachine(t, 2)
	var order []int
	recv := m.SpawnAt("r", 1, func(p *Proc) {
		// Receive tag 2 first even though tag 1 arrives first.
		b2 := p.Recv(AnySource, 2)
		order = append(order, b2.Tag())
		b1 := p.Recv(AnySource, 1)
		order = append(order, b1.Tag())
	})
	m.SpawnAt("s", 0, func(p *Proc) {
		p.InitSend()
		p.PkInt(1)
		p.Send(recv, 1)
		p.InitSend()
		p.PkInt(2)
		p.Send(recv, 2)
	})
	k.Run()
	checkErrs(t, m)
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("order = %v", order)
	}
}

func TestNRecv(t *testing.T) {
	k, m := simMachine(t, 2)
	var first, second bool
	recv := m.SpawnAt("r", 1, func(p *Proc) {
		first = p.NRecv(AnySource, AnyTag) != nil // nothing yet
		p.Recv(AnySource, 2)                      // the flag follows the data (FIFO)
		second = p.NRecv(AnySource, 1) != nil     // data already queued
	})
	m.SpawnAt("s", 0, func(p *Proc) {
		p.InitSend()
		p.PkInt(1)
		p.Send(recv, 1)
		p.InitSend()
		p.PkInt(2)
		p.Send(recv, 2)
	})
	k.Run()
	checkErrs(t, m)
	if first {
		t.Error("NRecv should find nothing at t=0")
	}
	if !second {
		t.Error("NRecv should find the data message queued before the flag")
	}
}

func TestSpawnParentAndKill(t *testing.T) {
	k, m := simMachine(t, 2)
	var childSaw TID
	var managerTID TID
	managerTID = m.SpawnAt("manager", 0, func(p *Proc) {
		if p.Parent() != NoParent {
			t.Errorf("root parent = %d", p.Parent())
		}
		child := p.Spawn("worker", 1, func(w *Proc) {
			childSaw = w.Parent()
			// Worker waits forever; the manager kills it.
			w.Recv(AnySource, AnyTag)
			t.Error("worker should have been killed in Recv")
		})
		p.Compute(sim.Millisecond)
		p.Kill(child)
	})
	k.Run()
	checkErrs(t, m)
	if childSaw != managerTID {
		t.Errorf("child's parent = %d, want %d", childSaw, managerTID)
	}
	if k.Parked() != 0 {
		t.Errorf("parked procs remain: %d", k.Parked())
	}
}

func TestSpawnCostIsCharged(t *testing.T) {
	k, m := simMachine(t, 2)
	m.SpawnAt("m", 0, func(p *Proc) {
		p.Spawn("w", 1, func(w *Proc) {})
	})
	end := k.Run()
	checkErrs(t, m)
	if end < m.cm.PVMSpawnCost {
		t.Errorf("end = %v, want >= spawn cost %v", end, m.cm.PVMSpawnCost)
	}
}

func TestGroupsAndMcast(t *testing.T) {
	k, m := simMachine(t, 4)
	var mu atomic.Int64
	const members = 3
	for i := 0; i < members; i++ {
		i := i
		m.SpawnAt("w", i, func(p *Proc) {
			p.JoinGroupAs("row", i)
			p.Barrier("joined", members)
			if i == 0 {
				// Instance 0 multicasts to the whole row.
				var dsts []TID
				for j := 0; j < members; j++ {
					dsts = append(dsts, p.Gettid("row", j))
				}
				if p.Gsize("row") != members {
					t.Errorf("gsize = %d", p.Gsize("row"))
				}
				p.InitSend()
				p.PkInt(99)
				p.Mcast(dsts, 5)
				return
			}
			b := p.Recv(AnySource, 5)
			if v := p.UpkInt(b); v == 99 {
				mu.Add(1)
			}
		})
	}
	k.Run()
	checkErrs(t, m)
	if mu.Load() != members-1 {
		t.Errorf("mcast reached %d members, want %d", mu.Load(), members-1)
	}
}

func TestBarrierBlocksUntilAll(t *testing.T) {
	k, m := simMachine(t, 3)
	var after []sim.Time
	for i := 0; i < 3; i++ {
		i := i
		m.SpawnAt("b", i, func(p *Proc) {
			p.Compute(sim.Time(i+1) * 10 * sim.Millisecond)
			p.Barrier("sync", 3)
			after = append(after, p.Now())
		})
	}
	k.Run()
	checkErrs(t, m)
	if len(after) != 3 {
		t.Fatalf("released %d", len(after))
	}
	for _, ts := range after {
		if ts < 30*sim.Millisecond {
			t.Errorf("task released at %v, before the slowest arrival", ts)
		}
	}
}

func TestMatrixPackUnpack(t *testing.T) {
	k, m := simMachine(t, 2)
	a := matmul.Random(8, 1)
	recv := m.SpawnAt("r", 1, func(p *Proc) {
		b := p.Recv(AnySource, 3)
		got := p.UpkMat(b)
		if matmul.MaxAbsDiff(a, got) != 0 {
			t.Error("matrix corrupted in transit")
		}
	})
	m.SpawnAt("s", 0, func(p *Proc) {
		p.InitSend()
		p.PkMat(a)
		p.Send(recv, 3)
	})
	k.Run()
	checkErrs(t, m)
}

func TestUnpackBeyondEndPanicsIsRecorded(t *testing.T) {
	k, m := simMachine(t, 1)
	recv := m.SpawnAt("r", 0, func(p *Proc) {
		b := p.Recv(AnySource, AnyTag)
		p.UpkInt(b)
		p.UpkInt(b) // only one int was packed
	})
	m.SpawnAt("s", 0, func(p *Proc) {
		p.InitSend()
		p.PkInt(1)
		p.Send(recv, 0)
	})
	k.Run()
	errs := m.Errors()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "unpack") {
		t.Errorf("errors = %v", errs)
	}
}

func TestFragmentationAndWindowPacing(t *testing.T) {
	// A large message must take longer per byte than a small one and keep
	// the bus busy for at least its wire time.
	k, m := simMachine(t, 2)
	cm := m.cm
	payload := make([]byte, 10*cm.PVMFragSize)
	recv := m.SpawnAt("r", 1, func(p *Proc) {
		b := p.Recv(AnySource, 1)
		if got := p.UpkBytes(b); len(got) != len(payload) {
			t.Errorf("len = %d", len(got))
		}
	})
	m.SpawnAt("s", 0, func(p *Proc) {
		p.InitSend()
		p.PkBytes(payload)
		p.Send(recv, 1)
	})
	end := k.Run()
	checkErrs(t, m)
	if wire := cm.WireTime(len(payload)); end < wire {
		t.Errorf("end %v < pure wire time %v", end, wire)
	}
	// All 10 fragments plus acks crossed the bus.
	if msgs := m.cluster.Bus.Stats.Messages; msgs < 20 {
		t.Errorf("bus messages = %d, want >= 20 (frags + acks)", msgs)
	}
}

func TestSendToDeadTaskIsDropped(t *testing.T) {
	k, m := simMachine(t, 1)
	m.SpawnAt("s", 0, func(p *Proc) {
		p.InitSend()
		p.PkInt(1)
		p.Send(9999, 0)
	})
	k.Run()
	checkErrs(t, m)
}

func TestLocalDeliverySkipsBus(t *testing.T) {
	k, m := simMachine(t, 1)
	recv := m.SpawnAt("r", 0, func(p *Proc) { p.Recv(AnySource, AnyTag) })
	m.SpawnAt("s", 0, func(p *Proc) {
		p.InitSend()
		p.PkInt(1)
		p.Send(recv, 0)
	})
	k.Run()
	checkErrs(t, m)
	if m.cluster.Bus.Stats.Messages != 0 {
		t.Errorf("local send used the bus: %d messages", m.cluster.Bus.Stats.Messages)
	}
}

func TestRealMachineManagerWorker(t *testing.T) {
	// The Fig. 2 manager/worker skeleton on the real (goroutine) machine.
	m := NewRealMachine(4)
	const nTasks = 30
	results := make([]int64, 0, nTasks)
	m.SpawnAt("manager", 0, func(p *Proc) {
		const nWorkers = 3
		workers := make([]TID, nWorkers)
		for i := 0; i < nWorkers; i++ {
			workers[i] = p.Spawn("worker", 1+i, func(w *Proc) {
				for {
					b := w.Recv(w.Parent(), AnyTag)
					task := w.UpkInt(b)
					w.InitSend()
					w.PkInt(task * task)
					w.Send(w.Parent(), 2)
				}
			})
		}
		next := int64(0)
		for _, w := range workers {
			p.InitSend()
			p.PkInt(next)
			p.Send(w, 1)
			next++
		}
		outstanding := len(workers)
		for outstanding > 0 {
			b := p.Recv(AnySource, 2)
			results = append(results, p.UpkInt(b))
			if next < nTasks {
				p.InitSend()
				p.PkInt(next)
				p.Send(b.Sender(), 1)
				next++
			} else {
				p.Kill(b.Sender())
				outstanding--
			}
		}
	})
	m.Wait()
	checkErrs(t, m)
	if len(results) != nTasks {
		t.Fatalf("got %d results, want %d", len(results), nTasks)
	}
	var sum int64
	for _, r := range results {
		sum += r
	}
	var want int64
	for i := int64(0); i < nTasks; i++ {
		want += i * i
	}
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestSpawnOnBadHostPanics(t *testing.T) {
	_, m := simMachine(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("bad host should panic")
		}
	}()
	m.SpawnAt("x", 5, func(*Proc) {})
}
