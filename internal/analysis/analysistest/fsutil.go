package analysistest

import (
	"errors"
	"os"
)

var errNoRoot = errors.New("analysistest: no go.mod found above working directory")

func fileExists(path string) (bool, error) {
	_, err := os.Stat(path)
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}
