package bytecode

import (
	"testing"

	"messengers/internal/value"
)

// loopProgram is a canonical counting loop: i = 0; while (i < 10) { i = i + 1 }
// Its loop head and increment are exactly the two quad idioms the lowering
// pass targets (slot-compare-branch and slot-arith-store); with quads
// disabled by jump targets it falls back to the pair families.
func loopProgram(t *testing.T) *Program {
	t.Helper()
	p := &Program{
		Name:   "loop",
		Consts: []value.Value{value.Int(0), value.Int(10), value.Int(1)},
		Names:  []string{"i"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpConst, A: 0},  // 0: const 0
			{Op: OpStoreM, A: 0}, // 1: storem i
			{Op: OpLoadM, A: 0},  // 2: loadm i      <- loop head (jump target)
			{Op: OpConst, A: 1},  // 3: const 10
			{Op: OpLt},           // 4: lt
			{Op: OpJz, A: 11},    // 5: jz 11
			{Op: OpLoadM, A: 0},  // 6: loadm i
			{Op: OpConst, A: 2},  // 7: const 1
			{Op: OpAdd},          // 8: add
			{Op: OpStoreM, A: 0}, // 9: storem i
			{Op: OpJmp, A: 2},    // 10: jmp 2
			{Op: OpEnd},          // 11: end
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func TestLoweredNilForUnverified(t *testing.T) {
	p := loopProgram(t)
	p.Funcs[0].Code[0].A = 99 // corrupt
	if err := p.Validate(); err == nil {
		t.Fatal("corrupt program verified")
	}
	if p.Lowered(LowerFused) != nil || p.Lowered(LowerPlain) != nil {
		t.Fatal("Lowered must be nil for unverified programs")
	}
}

func TestLoweredPlainIsOneToOne(t *testing.T) {
	p := loopProgram(t)
	low := p.Lowered(LowerPlain)
	if low == nil {
		t.Fatal("nil Lowered for verified program")
	}
	code := low.Funcs[0].Code
	src := p.Funcs[0].Code
	if len(code) != len(src) {
		t.Fatalf("plain lowering changed length: %d vs %d", len(code), len(src))
	}
	if low.Fused != 0 {
		t.Fatalf("plain lowering fused %d instructions", low.Fused)
	}
	for i, d := range code {
		if d.N != 1 || int(d.Src) != i {
			t.Errorf("instr %d: N=%d Src=%d", i, d.N, d.Src)
		}
		ops, n := d.Op.Constituents()
		if n != 1 || ops[0] != src[i].Op {
			t.Errorf("instr %d: constituents (%v,%d) want (%v,1)", i, ops[0], n, src[i].Op)
		}
	}
	// Jump targets resolve to themselves under 1:1 lowering.
	if code[5].Op != DJz || code[5].A != 11 {
		t.Errorf("jz lowered to %v A=%d", code[5].Op, code[5].A)
	}
	if code[10].Op != DJmp || code[10].A != 2 {
		t.Errorf("jmp lowered to %v A=%d", code[10].Op, code[10].A)
	}
}

func TestLoweredFusion(t *testing.T) {
	p := loopProgram(t)
	low := p.Lowered(LowerFused)
	code := low.Funcs[0].Code
	// Expected stream: the loop head (loadm i, const 10, lt, jz) and the
	// increment (loadm i, const 1, add, storem i) each collapse into one
	// quad superinstruction.
	//   0: const 0
	//   1: storem i
	//   2: mc<jz  i,10 -> end   <- loop head (jump target)
	//   3: m+c>m  i,1 -> i
	//   4: jmp 2
	//   5: end
	want := []DOp{DConst, DStoreM, DFMCLtJz, DFMCAddStoreM, DJmp, DEnd}
	if len(code) != len(want) {
		t.Fatalf("fused stream length %d, want %d: %v", len(code), len(want), code)
	}
	for i, op := range want {
		if code[i].Op != op {
			t.Fatalf("instr %d: %v want %v (stream %v)", i, code[i].Op, op, code)
		}
	}
	if low.Fused != 2 {
		t.Errorf("Fused=%d want 2", low.Fused)
	}
	// Quad operands: slot of i is 0, constants decoded, branch target
	// resolved to the direct index of end.
	if code[2].A != 0 || code[2].Val.AsInt() != 10 || code[2].C != 5 || code[2].N != 4 {
		t.Errorf("loop head quad = %+v", code[2])
	}
	if code[3].A != 0 || code[3].B != 0 || code[3].Val.AsInt() != 1 || code[3].N != 4 {
		t.Errorf("increment quad = %+v", code[3])
	}
	if code[4].A != 2 { // jmp back to the loop head's quad
		t.Errorf("jmp target %d want 2", code[4].A)
	}
	// S2D maps statement boundaries; interiors of fused sequences are -1.
	s2d := low.Funcs[0].S2D
	wantS2D := []int32{0, 1, 2, -1, -1, -1, 3, -1, -1, -1, 4, 5}
	for i, w := range wantS2D {
		if s2d[i] != w {
			t.Errorf("S2D[%d]=%d want %d", i, s2d[i], w)
		}
	}
	// Step accounting: total N must equal source length.
	total := 0
	for _, d := range code {
		total += int(d.N)
	}
	if total != len(p.Funcs[0].Code) {
		t.Errorf("sum of N = %d, want %d", total, len(p.Funcs[0].Code))
	}
}

// TestLoweredPairFallback pins the pair families on a loop whose constant
// operand is loaded before the variable — no quad idiom matches, so the
// pass falls back to loadm+const, lt+jz, and add+storem pairs.
func TestLoweredPairFallback(t *testing.T) {
	p := &Program{
		Name:   "pairs",
		Consts: []value.Value{value.Int(0), value.Int(10), value.Int(1)},
		Names:  []string{"i"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpConst, A: 0},  // 0: const 0
			{Op: OpStoreM, A: 0}, // 1: storem i
			{Op: OpLoadM, A: 0},  // 2: loadm i      <- loop head
			{Op: OpConst, A: 1},  // 3: const 10
			{Op: OpLt},           // 4: lt
			{Op: OpJz, A: 11},    // 5: jz end
			{Op: OpConst, A: 2},  // 6: const 1     (const first: no quad)
			{Op: OpLoadM, A: 0},  // 7: loadm i
			{Op: OpAdd},          // 8: add
			{Op: OpStoreM, A: 0}, // 9: storem i
			{Op: OpJmp, A: 2},    // 10: jmp 2
			{Op: OpEnd},          // 11: end
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	low := p.Lowered(LowerFused)
	code := low.Funcs[0].Code
	// 2..5 is the loop-head quad (loadm, const, lt, jz) — still a quad.
	// 6..9 (const, loadm, add, storem) is not an idiom: (const,loadm) is
	// not a pair either, so const stays single, then (loadm? no —
	// loadm@7 pairs with nothing ahead of add), (add,storem) pairs.
	want := []DOp{DConst, DStoreM, DFMCLtJz, DConst, DLoadM, DFAddStoreM, DJmp, DEnd}
	if len(code) != len(want) {
		t.Fatalf("stream length %d want %d: %v", len(code), len(want), code)
	}
	for i, op := range want {
		if code[i].Op != op {
			t.Fatalf("instr %d: %v want %v (stream %v)", i, code[i].Op, op, code)
		}
	}
	if low.Fused != 2 {
		t.Errorf("Fused=%d want 2", low.Fused)
	}
}

func TestLoweredNoFusionAcrossJumpTarget(t *testing.T) {
	// The const at pc 3 is a jump target: fusing (loadm@2, const@3) would
	// make the jmp at 7 land inside a pair and skip the load.
	p := &Program{
		Name:   "jt",
		Consts: []value.Value{value.Int(0), value.Int(1)},
		Names:  []string{"i"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpConst, A: 0},  // 0
			{Op: OpStoreM, A: 0}, // 1
			{Op: OpLoadM, A: 0},  // 2: would fuse with 3...
			{Op: OpConst, A: 1},  // 3: ...but 3 is a jump target
			{Op: OpLt},           // 4
			{Op: OpJz, A: 8},     // 5
			{Op: OpLoadM, A: 0},  // 6
			{Op: OpJmp, A: 3},    // 7: jumps INTO the would-be pair
			{Op: OpEnd},          // 8
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	low := p.Lowered(LowerFused)
	code := low.Funcs[0].Code
	s2d := low.Funcs[0].S2D
	if s2d[3] == -1 {
		t.Fatal("jump target lowered to a pair interior")
	}
	if code[s2d[2]].Op != DLoadM {
		t.Errorf("loadm before a jump-target const fused: %v", code[s2d[2]].Op)
	}
	// (lt@4, jz@5) still fuses — 5 is not a target.
	if code[s2d[4]].Op != DFLtJz || code[s2d[4]].A != s2d[8] {
		t.Errorf("lt+jz: op=%v A=%d want target %d", code[s2d[4]].Op, code[s2d[4]].A, s2d[8])
	}
	if code[s2d[7]].Op != DJmp || code[s2d[7]].A != s2d[3] {
		t.Errorf("jmp: op=%v A=%d want target %d", code[s2d[7]].Op, code[s2d[7]].A, s2d[3])
	}
}

func TestLoweredAggregateConstNeedsClone(t *testing.T) {
	arr := value.Arr([]value.Value{value.Int(1)})
	p := &Program{
		Name:   "agg",
		Consts: []value.Value{arr, value.Int(0)},
		Names:  []string{"a"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpLoadM, A: 0}, // loadm a
			{Op: OpConst, A: 0}, // const [1]  — aggregate: must NOT fuse into loadm+const
			{Op: OpPop},
			{Op: OpPop},
			{Op: OpEnd},
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	code := p.Lowered(LowerFused).Funcs[0].Code
	if code[0].Op != DLoadM {
		t.Errorf("loadm fused with aggregate const: %v", code[0].Op)
	}
	if code[1].Op != DConstClone {
		t.Errorf("aggregate const lowered to %v, want const*", code[1].Op)
	}
}

// TestLoweredKindSpecialization pins the LowerKind stream for the counting
// loop: the verifier proves i is an int everywhere, so the loop-head and
// increment quads swap to their guard-free .ii variants while the stream
// shape (Src, N, operands, S2D) stays byte-for-byte the fused stream's.
func TestLoweredKindSpecialization(t *testing.T) {
	p := loopProgram(t)
	low := p.Lowered(LowerKind)
	code := low.Funcs[0].Code
	want := []DOp{DConst, DStoreM, DFMCLtJzII, DFMCAddStoreMII, DJmp, DEnd}
	if len(code) != len(want) {
		t.Fatalf("kind stream length %d want %d: %v", len(code), len(want), code)
	}
	for i, op := range want {
		if code[i].Op != op {
			t.Fatalf("instr %d: %v want %v (stream %v)", i, code[i].Op, op, code)
		}
	}
	fused := p.Lowered(LowerFused).Funcs[0]
	if len(fused.Code) != len(code) {
		t.Fatalf("kind stream length %d, fused %d", len(code), len(fused.Code))
	}
	for i := range code {
		k, f := code[i], fused.Code[i]
		if k.Op.Generic() != f.Op {
			t.Errorf("instr %d: %v does not specialize %v", i, k.Op, f.Op)
		}
		if k.N != f.N || k.Src != f.Src || k.A != f.A || k.B != f.B || k.C != f.C {
			t.Errorf("instr %d: specialization changed operands: %+v vs %+v", i, k, f)
		}
	}
	for pc := range low.Funcs[0].S2D {
		if low.Funcs[0].S2D[pc] != fused.S2D[pc] {
			t.Errorf("S2D[%d] diverged: %d vs %d", pc, low.Funcs[0].S2D[pc], fused.S2D[pc])
		}
	}
}

// TestLoweredKindSpecializationRequiresProof: a Messenger variable that is
// never stored stays ⊤ (the daemon may inject anything), so its loop head
// keeps the generic guarded quad.
func TestLoweredKindSpecializationRequiresProof(t *testing.T) {
	p := &Program{
		Name:   "top",
		Consts: []value.Value{value.Int(10), value.Int(1)},
		Names:  []string{"i", "s"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpLoadM, A: 0},  // 0: loadm i   <- never stored: ⊤
			{Op: OpConst, A: 0},  // 1: const 10
			{Op: OpLt},           // 2: lt
			{Op: OpJz, A: 9},     // 3: jz end
			{Op: OpLoadM, A: 1},  // 4: loadm s
			{Op: OpConst, A: 1},  // 5: const 1
			{Op: OpAdd},          // 6: add
			{Op: OpStoreM, A: 1}, // 7: storem s
			{Op: OpJmp, A: 0},    // 8
			{Op: OpEnd},          // 9
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	code := p.Lowered(LowerKind).Funcs[0].Code
	if code[0].Op != DFMCLtJz {
		t.Errorf("loop head over ⊤ variable specialized: %v", code[0].Op)
	}
	// s is also ⊤ at the increment: its kind joins Int (after the first
	// store) with the injectable entry state across the back edge.
	if code[1].Op != DFMCAddStoreM {
		t.Errorf("increment over ⊤ variable specialized: %v", code[1].Op)
	}
}

// TestLoweredKindNoSpecializedDivByConstZero: x / 0 has a proven-int
// divisor whose value is statically zero; the guard-free .ii divide must
// not be emitted (the generic handler reports the runtime error).
func TestLoweredKindNoSpecializedDivByConstZero(t *testing.T) {
	p := &Program{
		Name:   "divz",
		Consts: []value.Value{value.Int(4), value.Int(0)},
		Names:  []string{"x"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpConst, A: 0},  // const 4
			{Op: OpConst, A: 1},  // const 0
			{Op: OpDiv},          // fused into const+div
			{Op: OpStoreM, A: 0}, // storem x
			{Op: OpEnd},
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	code := p.Lowered(LowerKind).Funcs[0].Code
	for _, d := range code {
		if d.Op == DFConstDivII {
			t.Fatalf("specialized divide by constant zero emitted: %v", code)
		}
	}
}

// TestDOpGenericRoundTrip: every specialized opcode names a generic
// counterpart with identical constituents and width, and carries a kind
// suffix in its mnemonic.
func TestDOpGenericRoundTrip(t *testing.T) {
	for o := DOp(0); o < NumDOps; o++ {
		g := o.Generic()
		if o < DAddII {
			if g != o {
				t.Errorf("%v: Generic()=%v want itself", o, g)
			}
			continue
		}
		if g >= DAddII {
			t.Errorf("%v: Generic()=%v is itself specialized", o, g)
		}
		so, sn := o.Constituents()
		go_, gn := g.Constituents()
		if so != go_ || sn != gn {
			t.Errorf("%v: constituents (%v,%d) differ from generic %v (%v,%d)", o, so, sn, g, go_, gn)
		}
		if suf := specSuffix(o); len(o.String()) <= len(suf) || o.String()[:len(o.String())-len(suf)] != g.String() {
			t.Errorf("%v: name %q does not extend generic %q with %q", o, o.String(), g.String(), suf)
		}
	}
}

func TestLoweredCacheResetOnValidate(t *testing.T) {
	p := loopProgram(t)
	l1 := p.Lowered(LowerFused)
	if l1 == nil {
		t.Fatal("nil lowered")
	}
	if p.Lowered(LowerFused) != l1 {
		t.Error("Lowered not cached")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("revalidate: %v", err)
	}
	if p.Lowered(LowerFused) == l1 {
		t.Error("Lowered cache survived Validate")
	}
}

func TestLoweredMVarSlots(t *testing.T) {
	p := &Program{
		Name:   "mv",
		Consts: []value.Value{value.Int(1)},
		Names:  []string{"x", "y"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpConst, A: 0},
			{Op: OpStoreM, A: 1}, // y first
			{Op: OpLoadM, A: 1},
			{Op: OpStoreM, A: 0}, // then x
			{Op: OpEnd},
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	low := p.Lowered(LowerPlain)
	if len(low.MVars) != 2 || low.MVars[0] != "y" || low.MVars[1] != "x" {
		t.Fatalf("MVars=%v want [y x] (first-use order)", low.MVars)
	}
	if low.Funcs[0].Code[1].A != 0 || low.Funcs[0].Code[3].A != 1 {
		t.Errorf("slot assignment wrong: %v", low.Funcs[0].Code)
	}
}
