// Package faults provides deterministic, seedable fault injection for both
// engines: a Plan describes message-level faults (drop, duplicate, corrupt,
// latency spikes), network partitions, and daemon crashes/restarts; an
// Injector turns the plan into per-message verdicts using a splitmix64
// stream, so the same seed and plan always inject the same faults at the
// same points of a deterministic run.
//
// The injector plugs into the simulated cluster through lan.FaultHook (see
// Injector.LanHook) and into the TCP engine through transport's SetInjector;
// crashes and restarts are armed by Schedule against either engine's clock.
// Every injected fault is counted (faults.injected.*) and traced so chaos
// runs stay diagnosable.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"messengers/internal/lan"
	"messengers/internal/obs"
	"messengers/internal/sim"
)

// Crash schedules one daemon death. Times are nanoseconds from run start —
// simulated time on the simulated engine, wall time on real engines.
type Crash struct {
	Daemon int   `json:"daemon"`
	At     int64 `json:"at"`
	// RestartAfter, when positive, revives the daemon that long after the
	// crash (a fresh, empty daemon: the logical nodes and Messengers it
	// hosted are gone).
	RestartAfter int64 `json:"restart_after,omitempty"`
}

// Partition isolates Group from all other daemons during [At, Heal):
// messages crossing the cut are dropped. Heal of zero never heals.
type Partition struct {
	At    int64 `json:"at"`
	Heal  int64 `json:"heal,omitempty"`
	Group []int `json:"group"`
	// OneWay makes the cut asymmetric: only messages *from* the group to
	// the rest of the network are dropped; traffic into the group still
	// flows. This models a host whose transmit path is broken (or a
	// firewall misconfiguration) rather than a clean network split.
	OneWay bool `json:"one_way,omitempty"`
}

// Storm is a windowed probability override: during [At, Until) the plan's
// base drop/dup/delay probabilities are replaced by the storm's. Storms
// model transient congestion — a burst of loss and latency — without
// changing the decision stream's shape (the injector still consumes exactly
// four draws per message, so runs with and without a storm stay aligned
// up to the verdicts themselves).
type Storm struct {
	At        int64   `json:"at"`
	Until     int64   `json:"until"`
	Drop      float64 `json:"drop,omitempty"`
	Dup       float64 `json:"dup,omitempty"`
	DelayProb float64 `json:"delay_prob,omitempty"`
	Delay     int64   `json:"delay,omitempty"`
}

// Plan is one deterministic fault scenario. Probabilities are per message;
// durations are nanoseconds.
type Plan struct {
	// Seed drives the fault decision stream. The same seed and plan on the
	// same deterministic run inject byte-identically.
	Seed uint64 `json:"seed"`
	// Drop is the probability a message is silently lost.
	Drop float64 `json:"drop,omitempty"`
	// Dup is the probability a message is delivered twice.
	Dup float64 `json:"dup,omitempty"`
	// Corrupt is the probability a message is damaged in transit. On the
	// modeled bus this is a CRC-rejected frame (occupies the wire, never
	// delivered); on TCP the connection is torn down as a receiver would on
	// a bad frame.
	Corrupt float64 `json:"corrupt,omitempty"`
	// DelayProb is the probability a message suffers an extra latency spike
	// of Delay nanoseconds.
	DelayProb float64 `json:"delay_prob,omitempty"`
	Delay     int64   `json:"delay,omitempty"`
	// DetectDelay is the failure-detection lag: how long after a crash (or
	// restart) the surviving daemons are notified when Schedule arms
	// explicit notices. Zero means a default of 10ms.
	DetectDelay int64       `json:"detect_delay,omitempty"`
	Crashes     []Crash     `json:"crashes,omitempty"`
	Partitions  []Partition `json:"partitions,omitempty"`
	Storms      []Storm     `json:"storms,omitempty"`
}

// DefaultDetectDelay is the failure-detection lag used when the plan leaves
// DetectDelay zero.
const DefaultDetectDelay = int64(10 * sim.Millisecond)

func (p *Plan) detectDelay() int64 {
	if p.DetectDelay > 0 {
		return p.DetectDelay
	}
	return DefaultDetectDelay
}

// Validate checks probabilities and crash targets against a daemon count.
func (p *Plan) Validate(daemons int) error {
	if err := p.check(); err != nil {
		return err
	}
	for _, c := range p.Crashes {
		if c.Daemon < 0 || c.Daemon >= daemons {
			return fmt.Errorf("faults: crash of unknown daemon %d (have %d)", c.Daemon, daemons)
		}
	}
	for _, pt := range p.Partitions {
		for _, d := range pt.Group {
			if d < 0 || d >= daemons {
				return fmt.Errorf("faults: partition references unknown daemon %d", d)
			}
		}
	}
	return nil
}

// check performs the daemon-count-independent structural validation shared
// by Validate and Load: probability ranges, negative durations, inverted or
// overlapping windows. Errors name the offending field and entry so a bad
// hand-written plan fails at load time with a pointer to the line, not
// twenty seconds into a chaos run.
func (p *Plan) check() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"dup", p.Dup}, {"corrupt", p.Corrupt}, {"delay_prob", p.DelayProb}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.Delay < 0 {
		return fmt.Errorf("faults: negative delay %d", p.Delay)
	}
	if p.DetectDelay < 0 {
		return fmt.Errorf("faults: negative detect_delay %d", p.DetectDelay)
	}
	if p.DelayProb > 0 && p.Delay <= 0 {
		return fmt.Errorf("faults: delay_prob %v with no delay duration", p.DelayProb)
	}
	for i, c := range p.Crashes {
		if c.At < 0 {
			return fmt.Errorf("faults: crashes[%d]: negative at %d", i, c.At)
		}
		if c.RestartAfter < 0 {
			return fmt.Errorf("faults: crashes[%d]: negative restart_after %d", i, c.RestartAfter)
		}
	}
	// Two windows for the same daemon must not overlap: a crash landing
	// inside another crash's dead window would kill an already-dead daemon
	// (or race its restart), which is never what the plan author meant.
	for i, a := range p.Crashes {
		for j, b := range p.Crashes {
			if j <= i || a.Daemon != b.Daemon {
				continue
			}
			aEnd, bEnd := crashEnd(a), crashEnd(b)
			if a.At < bEnd && b.At < aEnd {
				return fmt.Errorf("faults: crashes[%d] and crashes[%d]: overlapping windows for daemon %d ([%d,%d) vs [%d,%d))",
					i, j, a.Daemon, a.At, aEnd, b.At, bEnd)
			}
		}
	}
	for i, pt := range p.Partitions {
		if len(pt.Group) == 0 {
			return fmt.Errorf("faults: partitions[%d]: empty group", i)
		}
		if pt.At < 0 {
			return fmt.Errorf("faults: partitions[%d]: negative at %d", i, pt.At)
		}
		if pt.Heal < 0 {
			return fmt.Errorf("faults: partitions[%d]: negative heal %d", i, pt.Heal)
		}
		if pt.Heal > 0 && pt.Heal <= pt.At {
			return fmt.Errorf("faults: partitions[%d]: heal %d not after at %d", i, pt.Heal, pt.At)
		}
	}
	for i, s := range p.Storms {
		if s.At < 0 {
			return fmt.Errorf("faults: storms[%d]: negative at %d", i, s.At)
		}
		if s.Until <= s.At {
			return fmt.Errorf("faults: storms[%d]: until %d not after at %d", i, s.Until, s.At)
		}
		for _, pr := range []struct {
			name string
			v    float64
		}{{"drop", s.Drop}, {"dup", s.Dup}, {"delay_prob", s.DelayProb}} {
			if pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("faults: storms[%d]: %s probability %v outside [0,1]", i, pr.name, pr.v)
			}
		}
		if s.Delay < 0 {
			return fmt.Errorf("faults: storms[%d]: negative delay %d", i, s.Delay)
		}
		if s.DelayProb > 0 && s.Delay <= 0 {
			return fmt.Errorf("faults: storms[%d]: delay_prob %v with no delay duration", i, s.DelayProb)
		}
	}
	return nil
}

// crashEnd is the exclusive end of a crash's dead window. A crash with no
// restart holds the daemon down forever.
func crashEnd(c Crash) int64 {
	if c.RestartAfter <= 0 {
		return int64(1)<<62 - 1
	}
	return c.At + c.RestartAfter
}

// Load reads a JSON-encoded Plan from path (the cmd/mchaos -plan format;
// see docs/FAULTS.md). Unknown fields are rejected — a typoed key like
// "paritions" silently disables the fault it meant to inject, which is the
// worst possible failure mode for a chaos plan — and the structural checks
// that don't need a daemon count run immediately, so errors carry the field
// name and entry index.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	p := &Plan{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("faults: parse %s: %w", path, err)
	}
	if err := p.check(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Verdict is the injector's decision for one message.
type Verdict struct {
	Drop    bool
	Dup     bool
	Corrupt bool
	// Delay is extra latency in nanoseconds (0 = none).
	Delay int64
}

// Injector turns a Plan into per-message verdicts. It is safe for
// concurrent use (the TCP engine consults it from many goroutines); on the
// single-threaded simulated engine, calls happen in deterministic event
// order, so the decision stream is reproducible.
type Injector struct {
	plan *Plan
	tr   *obs.Tracer

	mu    sync.Mutex
	state uint64

	drops, dups, corrupts, delays, partitioned *obs.Counter
}

// NewInjector builds an injector for the plan. Either observability
// argument may be nil.
func NewInjector(p *Plan, m *obs.Metrics, tr *obs.Tracer) *Injector {
	return &Injector{
		plan:        p,
		tr:          tr,
		state:       p.Seed,
		drops:       m.Counter("faults.injected.drop"),
		dups:        m.Counter("faults.injected.dup"),
		corrupts:    m.Counter("faults.injected.corrupt"),
		delays:      m.Counter("faults.injected.delay"),
		partitioned: m.Counter("faults.injected.partition"),
	}
}

// rand returns the next [0,1) draw of the splitmix64 stream. Callers hold
// in.mu.
func (in *Injector) rand() float64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

func inGroup(group []int, d int) bool {
	for _, g := range group {
		if g == d {
			return true
		}
	}
	return false
}

// Decide returns the verdict for one message from src to dst of the given
// wire size at time now (nanoseconds from run start). Partition checks
// consume no randomness; the probabilistic faults always consume exactly
// four draws, so the decision stream depends only on the message sequence.
func (in *Injector) Decide(now int64, src, dst, size int) Verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, pt := range in.plan.Partitions {
		if now < pt.At || (pt.Heal > 0 && now >= pt.Heal) {
			continue
		}
		cut := inGroup(pt.Group, src) != inGroup(pt.Group, dst)
		if cut && pt.OneWay {
			// Asymmetric cut: only the group's outbound traffic is lost.
			cut = inGroup(pt.Group, src)
		}
		if cut {
			in.partitioned.Inc()
			if in.tr != nil {
				in.tr.Instant(src, "fault", "fault.partition",
					obs.I("to", int64(dst)), obs.I("bytes", int64(size)))
			}
			return Verdict{Drop: true}
		}
	}
	// Storms override the base probabilities inside their window but keep
	// the four-draws-per-message shape, so the stream alignment invariant
	// below holds with or without active storms.
	drop, dup, delayProb, delay := in.plan.Drop, in.plan.Dup, in.plan.DelayProb, in.plan.Delay
	for _, s := range in.plan.Storms {
		if now >= s.At && now < s.Until {
			drop, dup, delayProb, delay = s.Drop, s.Dup, s.DelayProb, s.Delay
			break
		}
	}
	v := Verdict{
		Drop:    in.rand() < drop,
		Corrupt: in.rand() < in.plan.Corrupt,
		Dup:     in.rand() < dup,
	}
	if in.rand() < delayProb {
		v.Delay = delay
	}
	switch {
	case v.Drop:
		v.Corrupt, v.Dup, v.Delay = false, false, 0
		in.drops.Inc()
		if in.tr != nil {
			in.tr.Instant(src, "fault", "fault.drop", obs.I("to", int64(dst)), obs.I("bytes", int64(size)))
		}
	case v.Corrupt:
		v.Dup, v.Delay = false, 0
		in.corrupts.Inc()
		if in.tr != nil {
			in.tr.Instant(src, "fault", "fault.corrupt", obs.I("to", int64(dst)), obs.I("bytes", int64(size)))
		}
	default:
		if v.Dup {
			in.dups.Inc()
			if in.tr != nil {
				in.tr.Instant(src, "fault", "fault.dup", obs.I("to", int64(dst)))
			}
		}
		if v.Delay > 0 {
			in.delays.Inc()
			if in.tr != nil {
				in.tr.Instant(src, "fault", "fault.delay", obs.I("to", int64(dst)), obs.I("ns", v.Delay))
			}
		}
	}
	return v
}

// LanHook adapts the injector to the simulated cluster's fault hook.
// Corruption has no byte-level representation on the modeled bus: a
// corrupted frame is one the receiver's CRC rejects, i.e. a drop that still
// occupies the wire.
func (in *Injector) LanHook(k *sim.Kernel) lan.FaultHook {
	return func(src, dst, size int) lan.FaultVerdict {
		v := in.Decide(int64(k.Now()), src, dst, size)
		return lan.FaultVerdict{Drop: v.Drop || v.Corrupt, Dup: v.Dup, Delay: sim.Time(v.Delay)}
	}
}
