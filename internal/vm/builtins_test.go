package vm

import (
	"sort"
	"testing"

	"messengers/internal/bytecode"
	"messengers/internal/compile"
	"messengers/internal/value"
)

// TestBuiltinsMatchKnownNatives pins the two native tables to each other.
// The kind-flow verifier models exactly bytecode.KnownNatives(); a builtin
// the verifier does not know would be honestly ⊤ (fine but slow), while a
// known native the VM does not implement would be a modeled signature with
// no implementation behind it — a proof about nothing. Both drifts fail.
func TestBuiltinsMatchKnownNatives(t *testing.T) {
	known := bytecode.KnownNatives()
	sort.Strings(known)
	impl := make([]string, 0, len(builtins))
	for name := range builtins {
		impl = append(impl, name)
	}
	sort.Strings(impl)
	if len(known) != len(impl) {
		t.Fatalf("KnownNatives has %d entries, vm builtins %d:\n known=%v\n impl=%v",
			len(known), len(impl), known, impl)
	}
	for i := range known {
		if known[i] != impl[i] {
			t.Fatalf("native tables diverge at %q vs %q:\n known=%v\n impl=%v",
				known[i], impl[i], known, impl)
		}
	}
	for _, name := range known {
		if !IsBuiltin(name) {
			t.Errorf("IsBuiltin(%q) = false for a known native", name)
		}
	}
}

// TestNativeResultKindSoundness cross-checks the modeled result kinds
// against the live implementations: for every known native, call the
// builtin with arguments of proven kinds and require the actual result's
// kind to be within the modeled result kind. A mismatch here means a
// specialized handler could be proven against a kind the builtin never
// produces.
func TestNativeResultKindSoundness(t *testing.T) {
	calls := map[string][]value.Value{
		"len":    {value.Str("ab")},
		"print":  {value.Int(1)},
		"str":    {value.Num(1.5)},
		"int":    {value.Str("7")},
		"num":    {value.Int(2)},
		"abs":    {value.Int(-3)},
		"min":    {value.Int(1), value.Int(2)},
		"max":    {value.Num(1.5), value.Num(2.5)},
		"floor":  {value.Num(1.9)},
		"ceil":   {value.Num(1.1)},
		"sqrt":   {value.Int(4)},
		"pow":    {value.Int(2), value.Int(3)},
		"array":  {value.Int(3)},
		"bytes":  {value.Int(3)},
		"copy":   {value.Arr([]value.Value{value.Int(1)})},
		"substr": {value.Str("abcd"), value.Int(1), value.Int(2)},
		"matrix": {value.Int(2), value.Int(2)},
		"rows":   {value.Matrix(value.NewMat(2, 2))},
		"cols":   {value.Matrix(value.NewMat(2, 2))},
		"matget": {value.Matrix(value.NewMat(2, 2)), value.Int(0), value.Int(0)},
		"matset": {value.Matrix(value.NewMat(2, 2)), value.Int(0), value.Int(0), value.Num(3.0)},
	}
	prog, err := compile.Compile("natives", `x = 1;`)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range bytecode.KnownNatives() {
		args, covered := calls[name]
		if !covered {
			t.Errorf("no concrete call for known native %q — extend this table", name)
			continue
		}
		kinds := make([]bytecode.AbsKind, len(args))
		for i, a := range args {
			kinds[i] = bytecode.KindOf(a.Kind())
		}
		modeled, known := bytecode.NativeResultKind(name, kinds)
		if !known {
			t.Errorf("NativeResultKind(%q, %v) unexpectedly unknown", name, kinds)
			continue
		}
		m := New(prog, nil)
		got, err := builtins[name](m, newTestHost(), args)
		if err != nil {
			t.Errorf("builtin %q(%v) failed on modeled-kind inputs: %v", name, args, err)
			continue
		}
		if !modeled.Matches(got.Kind()) {
			t.Errorf("builtin %q returned kind %v but the verifier modeled %v",
				name, got.Kind(), modeled)
		}
	}
}
