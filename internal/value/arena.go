package value

import "unsafe"

// Arena is a bump allocator for the Value slices that make up one
// Messenger's execution state — frame locals and the operand stack. The VM
// sizes it from the verifier's NumLocals/MaxStack metadata, so for the
// common single-frame Messenger everything it owns lives in one contiguous
// slab: a hop snapshot walks adjacent memory instead of scattered heap
// allocations, and restoring a snapshot is one slab plus decode.
//
// The arena is deliberately simple: it only bumps, never frees. Values
// handed out are zeroed; exhaustion falls back to ordinary heap allocation
// (the pre-arena behavior), so a deeply recursive or long-lived Messenger
// degrades gracefully instead of growing an unbounded slab — important
// when a server holds 100k+ paused sessions. There is no Reset: slices
// escape into VM state with independent lifetimes, and Go's GC reclaims
// the slab when the VM dies.
//
// An Arena is owned by a single VM and inherits the VM's concurrency
// contract (execution is daemon-confined); it is not safe for concurrent
// use.
type Arena struct {
	slab []Value
	used int
}

// valueSize is the in-memory footprint of one Value, for the
// vm.arena.bytes metric.
const valueSize = int64(unsafe.Sizeof(Value{}))

// maxArenaValues caps the slab a single VM may pin. Programs whose
// verifier-proven worst case exceeds this (MaxStack can reach 2^15) fall
// back to heap allocation for the excess rather than pinning megabytes
// per paused Messenger.
const maxArenaValues = 4096

// NewArena returns an arena with capacity for n Values, clamped to
// [0, maxArenaValues].
func NewArena(n int) *Arena {
	if n < 0 {
		n = 0
	}
	if n > maxArenaValues {
		n = maxArenaValues
	}
	return &Arena{slab: make([]Value, n)}
}

// Values returns a zeroed slice of n Values with len == cap (appending to
// it can never bleed into a neighboring allocation). When the slab cannot
// hold n more, the slice comes from the heap instead.
func (a *Arena) Values(n int) []Value {
	if a == nil || n > len(a.slab)-a.used {
		return make([]Value, n)
	}
	s := a.slab[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// Used reports how many Values have been served from the slab.
func (a *Arena) Used() int {
	if a == nil {
		return 0
	}
	return a.used
}

// Bytes reports the slab's memory footprint (the vm.arena.bytes metric).
func (a *Arena) Bytes() int64 {
	if a == nil {
		return 0
	}
	return int64(len(a.slab)) * valueSize
}
