package vm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"messengers/internal/value"
)

// builtinFunc executes inline in the VM (a computational statement in the
// paper's taxonomy, unlike native-mode functions which are daemon-level
// interruption points).
type builtinFunc func(m *VM, host Host, args []value.Value) (value.Value, error)

// builtins is the table of inline library functions available to every
// script.
var builtins = map[string]builtinFunc{
	"len":    biLen,
	"print":  biPrint,
	"str":    biStr,
	"int":    biInt,
	"num":    biNum,
	"abs":    biAbs,
	"min":    biMinMax(true),
	"max":    biMinMax(false),
	"floor":  biFloor,
	"ceil":   biCeil,
	"sqrt":   biSqrt,
	"pow":    biPow,
	"array":  biArray,
	"bytes":  biBytes,
	"copy":   biCopy,
	"substr": biSubstr,
	"matrix": biMatrix,
	"rows":   biRows,
	"cols":   biCols,
	"matget": biMatGet,
	"matset": biMatSet,
}

// IsBuiltin reports whether name is an inline builtin (so the compiler and
// tools can distinguish builtins from natives).
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

func wantArgs(args []value.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("want %d arguments, got %d", n, len(args))
	}
	return nil
}

func biLen(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	return value.Int(int64(args[0].Len())), nil
}

func biPrint(_ *VM, host Host, args []value.Value) (value.Value, error) {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.Format()
	}
	host.Print(strings.Join(parts, " "))
	return value.Nil(), nil
}

func biStr(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	return value.Str(args[0].Format()), nil
}

func biInt(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	a := args[0]
	switch a.Kind() {
	case value.KindInt, value.KindNum:
		return value.Int(a.AsInt()), nil
	case value.KindStr:
		n, err := strconv.ParseInt(strings.TrimSpace(a.AsStr()), 10, 64)
		if err != nil {
			return value.Nil(), fmt.Errorf("cannot parse %q as int", a.AsStr())
		}
		return value.Int(n), nil
	default:
		return value.Nil(), fmt.Errorf("cannot convert %v to int", a.Kind())
	}
}

func biNum(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	a := args[0]
	switch a.Kind() {
	case value.KindInt, value.KindNum:
		return value.Num(a.AsNum()), nil
	case value.KindStr:
		f, err := strconv.ParseFloat(strings.TrimSpace(a.AsStr()), 64)
		if err != nil {
			return value.Nil(), fmt.Errorf("cannot parse %q as num", a.AsStr())
		}
		return value.Num(f), nil
	default:
		return value.Nil(), fmt.Errorf("cannot convert %v to num", a.Kind())
	}
}

func biAbs(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	a := args[0]
	switch a.Kind() {
	case value.KindInt:
		n := a.AsInt()
		if n < 0 {
			n = -n
		}
		return value.Int(n), nil
	case value.KindNum:
		return value.Num(math.Abs(a.AsNum())), nil
	default:
		return value.Nil(), fmt.Errorf("abs of %v", a.Kind())
	}
}

func biMinMax(isMin bool) builtinFunc {
	return func(_ *VM, _ Host, args []value.Value) (value.Value, error) {
		if len(args) < 1 {
			return value.Nil(), fmt.Errorf("want at least 1 argument")
		}
		best := args[0]
		for _, a := range args[1:] {
			cmp, ok := a.Compare(best)
			if !ok {
				return value.Nil(), fmt.Errorf("cannot compare %v with %v", a.Kind(), best.Kind())
			}
			if isMin && cmp < 0 || !isMin && cmp > 0 {
				best = a
			}
		}
		return best, nil
	}
}

func biFloor(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	if !args[0].IsNumeric() {
		return value.Nil(), fmt.Errorf("floor of %v", args[0].Kind())
	}
	return value.Num(math.Floor(args[0].AsNum())), nil
}

func biCeil(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	if !args[0].IsNumeric() {
		return value.Nil(), fmt.Errorf("ceil of %v", args[0].Kind())
	}
	return value.Num(math.Ceil(args[0].AsNum())), nil
}

func biSqrt(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	if !args[0].IsNumeric() {
		return value.Nil(), fmt.Errorf("sqrt of %v", args[0].Kind())
	}
	return value.Num(math.Sqrt(args[0].AsNum())), nil
}

func biPow(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 2); err != nil {
		return value.Nil(), err
	}
	if !args[0].IsNumeric() || !args[1].IsNumeric() {
		return value.Nil(), fmt.Errorf("pow of %v, %v", args[0].Kind(), args[1].Kind())
	}
	return value.Num(math.Pow(args[0].AsNum(), args[1].AsNum())), nil
}

func biArray(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if len(args) < 1 || len(args) > 2 {
		return value.Nil(), fmt.Errorf("want array(n) or array(n, fill)")
	}
	if !args[0].IsNumeric() {
		return value.Nil(), fmt.Errorf("array size must be numeric")
	}
	n := int(args[0].AsInt())
	if n < 0 || n > 1<<26 {
		return value.Nil(), fmt.Errorf("bad array size %d", n)
	}
	fill := value.Nil()
	if len(args) == 2 {
		fill = args[1]
	}
	elems := make([]value.Value, n)
	for i := range elems {
		elems[i] = fill.Clone()
	}
	return value.Arr(elems), nil
}

func biBytes(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	if !args[0].IsNumeric() {
		return value.Nil(), fmt.Errorf("bytes size must be numeric")
	}
	n := int(args[0].AsInt())
	if n < 0 || n > 1<<28 {
		return value.Nil(), fmt.Errorf("bad bytes size %d", n)
	}
	return value.Bytes(make([]byte, n)), nil
}

func biCopy(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	return args[0].Clone(), nil
}

func biSubstr(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 3); err != nil {
		return value.Nil(), err
	}
	if args[0].Kind() != value.KindStr || !args[1].IsNumeric() || !args[2].IsNumeric() {
		return value.Nil(), fmt.Errorf("want substr(str, start, end)")
	}
	s := args[0].AsStr()
	i, j := int(args[1].AsInt()), int(args[2].AsInt())
	if i < 0 || j > len(s) || i > j {
		return value.Nil(), fmt.Errorf("substr bounds [%d:%d] out of range for length %d", i, j, len(s))
	}
	return value.Str(s[i:j]), nil
}

func biMatrix(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 2); err != nil {
		return value.Nil(), err
	}
	if !args[0].IsNumeric() || !args[1].IsNumeric() {
		return value.Nil(), fmt.Errorf("want matrix(rows, cols)")
	}
	r, c := int(args[0].AsInt()), int(args[1].AsInt())
	if r < 0 || c < 0 || r*c > 1<<26 {
		return value.Nil(), fmt.Errorf("bad matrix size %dx%d", r, c)
	}
	return value.Matrix(value.NewMat(r, c)), nil
}

func matArg(args []value.Value) (*value.Mat, error) {
	if args[0].Kind() != value.KindMat || args[0].AsMat() == nil {
		return nil, fmt.Errorf("want a matrix, got %v", args[0].Kind())
	}
	return args[0].AsMat(), nil
}

func biRows(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	mt, err := matArg(args)
	if err != nil {
		return value.Nil(), err
	}
	return value.Int(int64(mt.Rows)), nil
}

func biCols(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return value.Nil(), err
	}
	mt, err := matArg(args)
	if err != nil {
		return value.Nil(), err
	}
	return value.Int(int64(mt.Cols)), nil
}

func biMatGet(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 3); err != nil {
		return value.Nil(), err
	}
	mt, err := matArg(args)
	if err != nil {
		return value.Nil(), err
	}
	i, j := int(args[1].AsInt()), int(args[2].AsInt())
	if i < 0 || i >= mt.Rows || j < 0 || j >= mt.Cols {
		return value.Nil(), fmt.Errorf("matget(%d, %d) out of range for %dx%d", i, j, mt.Rows, mt.Cols)
	}
	return value.Num(mt.At(i, j)), nil
}

func biMatSet(_ *VM, _ Host, args []value.Value) (value.Value, error) {
	if err := wantArgs(args, 4); err != nil {
		return value.Nil(), err
	}
	mt, err := matArg(args)
	if err != nil {
		return value.Nil(), err
	}
	i, j := int(args[1].AsInt()), int(args[2].AsInt())
	if i < 0 || i >= mt.Rows || j < 0 || j >= mt.Cols {
		return value.Nil(), fmt.Errorf("matset(%d, %d) out of range for %dx%d", i, j, mt.Rows, mt.Cols)
	}
	mt.Set(i, j, args[3].AsNum())
	return value.Nil(), nil
}
