package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// suppressPrefix is the escape hatch: a comment "//lint:<category>" on the
// offending line, or alone on the line above it, silences findings of that
// category. Several categories may share one comment ("//lint:wallclock
// real engine timers"); everything after the category word is free-form
// justification.
const suppressPrefix = "//lint:"

// suppressions maps file -> line -> categories suppressed at that line.
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans the comments of the loaded files.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, suppressPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, suppressPrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				// The directive covers its own line and the next one, so it
				// can trail the offending statement or sit above it.
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					lines[ln][fields[0]] = true
				}
			}
		}
	}
	return sup
}

func (s suppressions) covers(d Diagnostic) bool {
	return s[d.Pos.Filename][d.Pos.Line][d.Category]
}

// RunAnalyzers applies every analyzer to one loaded package and returns
// the unsuppressed findings, sorted by position.
func RunAnalyzers(lp *LoadedPackage, analyzers []*Analyzer, shared map[string]any) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			PkgPath:  lp.PkgPath,
			Fset:     lp.Fset,
			Files:    lp.Files,
			Pkg:      lp.Pkg,
			Info:     lp.Info,
			Shared:   shared,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, lp.PkgPath, err)
		}
	}
	sup := collectSuppressions(lp.Fset, lp.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.covers(d) {
			kept = append(kept, d)
		}
	}
	sortDiags(kept)
	return kept, nil
}

// ModulePackages lists the import paths of every package directory under
// the repo root (sorted), skipping testdata, hidden, and vendor-like
// directories. Directories without Go files are skipped silently.
func ModulePackages(repoRoot string) ([]string, error) {
	var pkgs []string
	err := filepath.WalkDir(repoRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != repoRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(repoRoot, path)
				if err != nil {
					return err
				}
				if rel == "." {
					pkgs = append(pkgs, modulePath)
				} else {
					pkgs = append(pkgs, modulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgs)
	return pkgs, nil
}

// PackageDir maps an import path under the module back to its directory.
func PackageDir(repoRoot, pkgPath string) string {
	if pkgPath == modulePath {
		return repoRoot
	}
	return filepath.Join(repoRoot, filepath.FromSlash(strings.TrimPrefix(pkgPath, modulePath+"/")))
}
