package core

import (
	"strings"
	"testing"
	"time"

	"messengers/internal/compile"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// chanSystem builds a real (goroutine) n-daemon system. The cleanup closes
// the engine.
func chanSystem(t *testing.T, n int, opts ...Option) *System {
	t.Helper()
	eng := NewChanEngine(n)
	sys := NewSystem(eng, FullMesh(n), distGVTEnv(opts)...)
	t.Cleanup(eng.Close)
	return sys
}

// waitDone waits for quiescence with a watchdog so a broken run fails
// rather than hangs.
func waitDone(t *testing.T, sys *System) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		sys.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("system did not quiesce (live=%d)", sys.Live())
	}
	for _, err := range sys.Errors() {
		t.Errorf("runtime error: %v", err)
	}
}

func TestChanEngineFigure3ManagerWorker(t *testing.T) {
	const nDaemons = 4
	const nTasks = 40
	sys := chanSystem(t, nDaemons)

	sys.RegisterNative("next_task", func(ctx *NativeCtx, _ []value.Value) (value.Value, error) {
		next := ctx.NodeVar("next").AsInt()
		if next >= nTasks {
			return value.Nil(), nil
		}
		ctx.SetNodeVar("next", value.Int(next+1))
		return value.Int(next), nil
	})
	sys.RegisterNative("compute", func(_ *NativeCtx, args []value.Value) (value.Value, error) {
		return value.Int(args[0].AsInt() * 3), nil
	})
	sys.RegisterNative("deposit", func(ctx *NativeCtx, args []value.Value) (value.Value, error) {
		ctx.SetNodeVar("acc", value.Int(ctx.NodeVar("acc").AsInt()+args[0].AsInt()))
		return value.Nil(), nil
	})

	prog, err := compile.Compile("mw", `
		create(ALL);
		hop(ll = $last);
		while ((task = next_task()) != nil) {
			hop(ll = $last);
			res = compute(task);
			hop(ll = $last);
			deposit(res);
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Register(prog)
	if err := sys.Inject(0, "mw", nil); err != nil {
		t.Fatal(err)
	}
	waitDone(t, sys)

	// Read the result on the daemon's executor to avoid racing with it.
	result := make(chan int64, 1)
	sys.Do(0, func(d *Daemon) { result <- d.Store().Init().Vars["acc"].AsInt() })
	want := int64(0)
	for i := int64(0); i < nTasks; i++ {
		want += i * 3
	}
	if got := <-result; got != want {
		t.Errorf("acc = %d, want %d", got, want)
	}
}

func TestChanEngineGVTOrdering(t *testing.T) {
	sys := chanSystem(t, 3, WithGVTInterval(sim.Millisecond/2))
	prog, err := compile.Compile("ticker", `
		for (k = 0; k < 5; k++) {
			sched_abs(k * spacing + phase);
			print(tag, k);
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Register(prog)
	inject := func(d int, tag string, phase float64) {
		t.Helper()
		err := sys.Inject(d, "ticker", map[string]value.Value{
			"tag": value.Str(tag), "phase": value.Num(phase), "spacing": value.Num(1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	inject(1, "X", 0.2)
	inject(2, "Y", 0.6)
	waitDone(t, sys)

	out := sys.Output()
	if len(out) != 10 {
		t.Fatalf("output = %v", out)
	}
	// Virtual-time order: X k, Y k, X k+1, Y k+1, ...
	for i, line := range out {
		wantTag := "X"
		if i%2 == 1 {
			wantTag = "Y"
		}
		if !strings.HasPrefix(line, wantTag) {
			t.Errorf("line %d = %q, want prefix %q", i, line, wantTag)
		}
	}
}

func TestChanEngineParallelismAcrossDaemons(t *testing.T) {
	// Replicas on different daemons really run concurrently: N workers
	// each sleep ~20ms; the whole run must take far less than N*20ms.
	const n = 8
	sys := chanSystem(t, n)
	sys.RegisterNative("nap", func(_ *NativeCtx, _ []value.Value) (value.Value, error) {
		time.Sleep(20 * time.Millisecond)
		return value.Nil(), nil
	})
	prog, err := compile.Compile("napper", `
		create(ALL);
		x = nap();
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Register(prog)
	start := time.Now()
	if err := sys.Inject(0, "napper", nil); err != nil {
		t.Fatal(err)
	}
	waitDone(t, sys)
	elapsed := time.Since(start)
	if elapsed > 100*time.Millisecond {
		t.Errorf("7 parallel 20ms naps took %v; daemons are not concurrent", elapsed)
	}
}

func TestChanEngineCloseIsIdempotentAndStopsWork(t *testing.T) {
	eng := NewChanEngine(2)
	sys := NewSystem(eng, FullMesh(2))
	_ = sys
	eng.Close()
	// Post-close puts are dropped rather than panicking.
	eng.Exec(0, 0, func() {})
}

func TestExecQueueFIFOWithinLane(t *testing.T) {
	q := NewExecQueue()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Put(LaneNet, func() { got = append(got, i) })
	}
	for i := 0; i < 100; i++ {
		fn, ok := q.next()
		if !ok {
			t.Fatal("queue drained early")
		}
		fn()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %v", i, v)
		}
	}
	q.Close()
	if _, ok := q.next(); ok {
		t.Error("drained queue should report !ok")
	}
}

func TestExecQueueLanePriority(t *testing.T) {
	q := NewExecQueue()
	var got []string
	q.Put(LaneLocal, func() { got = append(got, "local") })
	q.Put(LaneNet, func() { got = append(got, "net") })
	q.Put(LaneControl, func() { got = append(got, "control") })
	for {
		fn, ok := q.next()
		if !ok {
			break
		}
		fn()
	}
	want := []string{"control", "net", "local"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", got, want)
		}
	}
}

func TestExecQueueRunDrainsOnClose(t *testing.T) {
	q := NewExecQueue()
	done := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		q.Put(LaneLocal, func() { done <- i })
	}
	q.Close()
	finished := make(chan struct{})
	go func() {
		q.Run()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Close")
	}
	if len(done) != 3 {
		t.Errorf("Run drained %d of 3 queued items before exiting", len(done))
	}
	// Post-close puts are dropped rather than panicking.
	q.Put(LaneNet, func() {})
}

func TestLaneForClassifiesKinds(t *testing.T) {
	control := []MsgKind{MsgGVTNotify, MsgGVTQuery, MsgGVTReport, MsgGVTAdvance,
		MsgGVTToken, MsgHopAck, MsgHeartbeat, MsgHalt}
	for _, k := range control {
		if LaneFor(k) != LaneControl {
			t.Errorf("LaneFor(%v) = %v, want LaneControl", k, LaneFor(k))
		}
	}
	net := []MsgKind{MsgMessenger, MsgCreate, MsgCreateAck, MsgInject, MsgProgram, MsgBatch}
	for _, k := range net {
		if LaneFor(k) != LaneNet {
			t.Errorf("LaneFor(%v) = %v, want LaneNet", k, LaneFor(k))
		}
	}
}
