// Package matmul implements the matrix kernels of the paper's second
// experiment (§3.2): the naive triple-loop multiply, the block-partitioned
// sequential multiply, and the block primitives (extract, install,
// multiply-accumulate) used by both the PVM and the MESSENGERS parallel
// implementations of the block algorithm.
package matmul

import (
	"fmt"
	"math"
	"math/rand"

	"messengers/internal/value"
)

// Random returns an n x n matrix with deterministic pseudo-random entries.
func Random(n int, seed int64) *value.Mat {
	r := rand.New(rand.NewSource(seed))
	m := value.NewMat(n, n)
	for i := range m.Data {
		m.Data[i] = r.Float64()*2 - 1
	}
	return m
}

// Naive computes C = A * B with the classic i-j-k triple loop — the paper's
// first sequential baseline.
func Naive(a, b *value.Mat) *value.Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matmul: %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := value.NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, sum)
		}
	}
	return c
}

// AddMul computes C += A * B (the block multiply-accumulate primitive).
// The k-j inner ordering streams B rows, which is also what makes the
// block version cache-friendly on real hardware.
func AddMul(c, a, b *value.Mat) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("matmul: addmul %dx%d += %dx%d * %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	n, m, p := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		ci := c.Data[i*p : (i+1)*p]
		for k := 0; k < m; k++ {
			aik := a.Data[i*m+k]
			if aik == 0 {
				continue
			}
			bk := b.Data[k*p : (k+1)*p]
			for j := range bk {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// GetBlock extracts the s x s block (bi, bj) of a (block-row-major
// coordinates as in the paper: block [i,j] covers rows i*s..i*s+s-1).
func GetBlock(a *value.Mat, bi, bj, s int) *value.Mat {
	out := value.NewMat(s, s)
	for r := 0; r < s; r++ {
		src := a.Data[(bi*s+r)*a.Cols+bj*s:]
		copy(out.Data[r*s:(r+1)*s], src[:s])
	}
	return out
}

// SetBlock installs an s x s block at block coordinates (bi, bj) of a.
func SetBlock(a *value.Mat, bi, bj int, blk *value.Mat) {
	s := blk.Rows
	for r := 0; r < s; r++ {
		dst := a.Data[(bi*s+r)*a.Cols+bj*s:]
		copy(dst[:s], blk.Data[r*s:(r+1)*s])
	}
}

// BlockSequential computes C = A * B with the matrices partitioned into an
// m x m grid of blocks — the paper's second sequential baseline, which
// beats Naive on real hardware by improving cache locality.
func BlockSequential(a, b *value.Mat, m int) *value.Mat {
	n := a.Rows
	if n%m != 0 {
		panic(fmt.Sprintf("matmul: %d not divisible into %d blocks", n, m))
	}
	s := n / m
	c := value.NewMat(n, n)
	for bi := 0; bi < m; bi++ {
		for bj := 0; bj < m; bj++ {
			acc := value.NewMat(s, s)
			for bk := 0; bk < m; bk++ {
				ab := GetBlock(a, bi, bk, s)
				bb := GetBlock(b, bk, bj, s)
				AddMul(acc, ab, bb)
			}
			SetBlock(c, bi, bj, acc)
		}
	}
	return c
}

// MACs returns the multiply-accumulate count of an n^3 multiply (the
// quantity the simulation cost model charges for).
func MACs(n int) int64 { return int64(n) * int64(n) * int64(n) }

// MaxAbsDiff returns the largest absolute elementwise difference, for
// validating the parallel implementations against the sequential ones.
func MaxAbsDiff(a, b *value.Mat) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var max float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}
