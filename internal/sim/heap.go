package sim

// Heap is a plain binary min-heap over a caller-supplied strict ordering.
// It replaces the three hand-rolled container/heap implementations that
// had accumulated in the tree (the kernel's eventHeap, gvt's tsHeap, and
// core's wakeHeap) with one generic core: Less/Swap/Push/Pop written once.
//
// The zero value is not usable; construct with NewHeap. The ordering must
// be a strict weak order and — for the deterministic queues in this repo —
// a total order (ties broken by a sequence number), so that every Pop
// order is reproducible.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements held.
func (h *Heap[T]) Len() int { return len(h.items) }

// Peek returns the minimum element without removing it. It panics on an
// empty heap; callers check Len first.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Items exposes the backing slice in heap order (not sorted order). It is
// read-only from the caller's perspective: mutating element priorities
// through it without a follow-up Reset/rebuild breaks the invariant. It
// exists for whole-queue scans (recovery draining a crashed daemon's wait
// queue, Time Warp searching for an event to annihilate).
func (h *Heap[T]) Items() []T { return h.items }

// Push adds x.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum element.
func (h *Heap[T]) Pop() T {
	n := len(h.items) - 1
	h.items[0], h.items[n] = h.items[n], h.items[0]
	x := h.items[n]
	var zero T
	h.items[n] = zero // release references for GC
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	return x
}

// RemoveAt removes and returns the element at index i of Items().
// Time Warp uses this to annihilate a pending event matched by an
// anti-message.
func (h *Heap[T]) RemoveAt(i int) T {
	n := len(h.items) - 1
	h.items[i], h.items[n] = h.items[n], h.items[i]
	x := h.items[n]
	var zero T
	h.items[n] = zero
	h.items = h.items[:n]
	if i < n {
		if !h.down(i) {
			h.up(i)
		}
	}
	return x
}

// Reset drops all elements, keeping capacity.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// down sifts i toward the leaves; it reports whether the element moved.
func (h *Heap[T]) down(i int) bool {
	start := i
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(h.items[r], h.items[l]) {
			m = r
		}
		if !h.less(h.items[m], h.items[i]) {
			break
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
	return i > start
}
