package protocols

import (
	"fmt"
	"strconv"

	messengers "messengers"
	"messengers/internal/core"
	"messengers/internal/faults"
	"messengers/internal/obs"
	"messengers/internal/value"
)

// Two-phase commit as a single Messenger (SNIPPETS.md snippet 3's TLA
// model, executable): the coordinator Messenger replicates along the "p"
// links to every participant (prepare), each replica records the
// participant's vote in a participant node variable (idempotent: a
// respawned replica re-reads the recorded vote rather than re-rolling it),
// returns along $last, and the replica completing the vote count fixes the
// decision at the coordinator node and replicates again to deliver it.
//
// The coordinator node's variables are the commit point. A coordinator
// crash between vote collection and decision delivery loses them — the
// classic 2PC blocking window — so under the leader-crash nemesis the run
// may legitimately end with no decision; what may never happen is a mixed
// or vote-contradicting outcome, which is exactly what TPCChecker asserts.

const tpcParticipants = 3

const tpcScript = `
node.votes = 0;
node.acks = 0;
tp_round();
hop(ll = "p");
// Prepare, at a participant: vote once, durably, in a node variable.
if (node.vote == nil) {
	node.vote = tp_vote();
}
v = node.vote;
hop(ll = $last);
// Collect, at the coordinator node (critical section between hops).
node.votes = node.votes + 1;
if (v == 0) { node.nack = 1; }
took = node.votes;
if (took != nparts) { end; }
d = 1;
if (node.nack == 1) { d = 0; }
node.decision = d;
tp_dec(d);
hop(ll = "p");
// Apply, at a participant. Idempotent: re-applying the same decision
// after a crash respawn is harmless and the checker tolerates it.
node.applied = d;
tp_apply(d);
hop(ll = $last);
node.acks = node.acks + 1;
`

func tpcNet() core.NetSpec {
	spec := core.NetSpec{Nodes: []core.NetNode{{Name: "coord", Daemon: 0}}}
	for p := 0; p < tpcParticipants; p++ {
		spec.Nodes = append(spec.Nodes, core.NetNode{Name: fmt.Sprintf("part%d", p), Daemon: 1 + p})
		spec.Links = append(spec.Links, core.NetLink{A: "coord", B: fmt.Sprintf("part%d", p), Name: "p"})
	}
	return spec
}

// tpcVote is the deterministic per-seed vote: participant part of a seeded
// run votes abort with probability 1/4. Both implementations share it so a
// seed's transaction outcome is comparable across Messenger and PVM runs.
func tpcVote(seed uint64, part int) int64 {
	z := seed ^ (uint64(part)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z%4 == 0 {
		return 0
	}
	return 1
}

func registerTPCNatives(sys *messengers.System, rec *Recorder, seed uint64) {
	sys.RegisterNative("tp_round", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvRound, 0, 0, "")
		return value.Nil(), nil
	})
	sys.RegisterNative("tp_vote", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		part := roleIndex(ctx.NodeName())
		v := tpcVote(seed, part)
		rec.Record(EvVote, part, 0, strconv.FormatInt(v, 10))
		return value.Int(v), nil
	})
	sys.RegisterNative("tp_dec", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvDecide, 0, 0, strconv.FormatInt(args[0].AsInt(), 10))
		return value.Nil(), nil
	})
	sys.RegisterNative("tp_apply", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvApply, roleIndex(ctx.NodeName()), 0, strconv.FormatInt(args[0].AsInt(), 10))
		return value.Nil(), nil
	})
}

func runTPCMessengers(engine string, seed uint64, plan *faults.Plan, rec *Recorder, m *obs.Metrics) error {
	sys, err := newMsgrSystem(engine, 1+tpcParticipants, plan, m)
	if err != nil {
		return err
	}
	defer sys.Close()
	registerTPCNatives(sys, rec, seed)
	if err := sys.CompileAndRegister("tpc_run", tpcScript); err != nil {
		return err
	}
	if err := sys.BuildNetwork(tpcNet()); err != nil {
		return err
	}
	err = sys.InjectAt(0, "tpc_run", "coord", map[string]value.Value{
		"nparts": value.Int(tpcParticipants),
	})
	if err != nil {
		return err
	}
	return runMsgrSystem(sys)
}
