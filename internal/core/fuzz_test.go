package core

import (
	"testing"
	"testing/quick"

	"messengers/internal/compile"
	"messengers/internal/vm"
)

// TestDecodeMsgNeverPanics: wire input is untrusted; garbage must produce
// an error, never a panic.
func TestDecodeMsgNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("DecodeMsg(%d bytes) panicked: %v", len(data), r)
			}
		}()
		_, _ = DecodeMsg(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRestoreNeverPanics: a corrupt snapshot against a valid program must
// fail cleanly.
func TestRestoreNeverPanics(t *testing.T) {
	prog, err := compile.Compile("p", `
		func f(a) { return a + 1; }
		x = f(1);
		hop(ll = "q");
	`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Restore(%d bytes) panicked: %v", len(data), r)
			}
		}()
		_, _ = vm.Restore(prog, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMsgMutationRoundTrips flips bytes in valid encodings: decoding must
// either fail or produce some message, never panic, and valid prefixes of
// re-encoded messages must stay stable.
func TestMsgMutationRoundTrips(t *testing.T) {
	base := (&Msg{
		Kind: MsgMessenger, From: 1, Snapshot: []byte{1, 2, 3, 4},
		MsgrID: 7, LVT: 1.25, DestNode: 3, Last: "row",
	}).Encode()
	f := func(pos uint16, val byte) bool {
		data := make([]byte, len(base))
		copy(data, base)
		data[int(pos)%len(data)] = val
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("mutated decode panicked: %v", r)
			}
		}()
		if m, err := DecodeMsg(data); err == nil && m != nil {
			_ = m.Encode() // re-encoding a decoded message must also be safe
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
