package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. All methods are nil-safe and
// goroutine-safe, so instrumented code holds counters unconditionally and a
// disabled registry costs one predictable branch per update.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates an int64 distribution in power-of-two buckets
// (bucket i counts values whose bit length is i), tracking count, sum, min,
// and max exactly.
type Histogram struct {
	mu      sync.Mutex
	buckets [65]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Observe records one sample (negative samples clamp to 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.buckets[bits.Len64(uint64(v))]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sample total.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the extreme samples (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) from the
// power-of-two buckets.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= target {
			if i == 0 {
				return 0
			}
			ub := int64(1)<<uint(i) - 1
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// MetricKind distinguishes registry entries in snapshots.
type MetricKind uint8

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String names the kind.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "?"
}

// Sample is one registry entry in a Snapshot.
type Sample struct {
	Name  string
	Kind  MetricKind
	Value int64 // counter/gauge value; histogram sum
	// Histogram detail (KindHistogram only).
	Count    int64
	Min, Max int64
	Mean     float64
	P50, P99 int64
}

// Metrics is a named registry of counters, gauges, and histograms — the
// single source of truth for run statistics. A nil *Metrics hands out nil
// instruments, whose updates are no-ops.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil
// registry.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil on a nil
// registry.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// CounterValue reads a counter without creating it (0 if absent or nil).
func (m *Metrics) CounterValue(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	c := m.counters[name]
	m.mu.Unlock()
	return c.Value()
}

// Snapshot returns every registered instrument sorted by name (counters,
// then gauges, then histograms interleaved alphabetically).
func (m *Metrics) Snapshot() []Sample {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := make([]Sample, 0, len(m.counters)+len(m.gauges)+len(m.histograms))
	for name, c := range m.counters {
		out = append(out, Sample{Name: name, Kind: KindCounter, Value: c.Value()})
	}
	for name, g := range m.gauges {
		out = append(out, Sample{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	for name, h := range m.histograms {
		out = append(out, Sample{
			Name: name, Kind: KindHistogram,
			Value: h.Sum(), Count: h.Count(),
			Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
			P50: h.Quantile(0.5), P99: h.Quantile(0.99),
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
