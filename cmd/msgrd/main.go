// msgrd runs a MESSENGERS daemon network whose daemons communicate over
// real TCP sockets, then injects a script into it — the command-line
// equivalent of the paper's "daemons instantiated on all physical nodes"
// plus shell injection.
//
//	msgrd -n 4 -inject prog.msl
//	msgrd -n 3 -addrs 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -inject prog.msl
//
// Every inter-daemon transfer (Messenger state, program registry sync, GVT
// control traffic) crosses the sockets using the binary wire format.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"messengers"
	"messengers/internal/compile"
)

func main() {
	n := flag.Int("n", 4, "daemon count")
	addrsFlag := flag.String("addrs", "", "comma-separated listen addresses (default ephemeral loopback)")
	inject := flag.String("inject", "", "MSL script to inject into daemon 0")
	at := flag.Int("at", 0, "daemon to inject into")
	flag.Parse()

	if *inject == "" {
		fmt.Fprintln(os.Stderr, "msgrd: -inject script.msl is required")
		os.Exit(2)
	}
	var addrs []string
	if *addrsFlag != "" {
		addrs = strings.Split(*addrsFlag, ",")
	}
	sys, err := messengers.NewTCPSystem(messengers.Config{
		Daemons: *n,
		Output:  os.Stdout,
	}, addrs)
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	for i, a := range sys.Addrs() {
		fmt.Printf("daemon %d listening on %s\n", i, a)
	}

	src, err := os.ReadFile(*inject)
	if err != nil {
		fatal(err)
	}
	name := strings.TrimSuffix(filepath.Base(*inject), filepath.Ext(*inject))
	prog, err := compile.Compile(name, string(src))
	if err != nil {
		fatal(err)
	}
	sys.Register(prog)
	if err := sys.Inject(*at, name, nil); err != nil {
		fatal(err)
	}
	sys.Wait()
	for _, err := range sys.Errors() {
		fmt.Fprintf(os.Stderr, "msgrd: %v\n", err)
	}
	if len(sys.Errors()) > 0 {
		os.Exit(1)
	}
	fmt.Println("computation quiescent")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "msgrd: %v\n", err)
	os.Exit(1)
}
