package messengers

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// ringTokenScripts are the examples/ringtoken programs in miniature: a token
// circulates the ring stamping nodes, then an auditor tallies the stamps and
// deletes the ring — together they exercise inject, hop, runtime inject,
// native calls, delete, and termination, so a trace of one run contains
// every messenger-lifecycle event kind.
const (
	ringTokenScript = `
		for (k = 0; k < laps * $ndaemons; k++) {
			node.stamps = node.stamps + 1;
			hop(ll = "ring", ldir = +);
		}
		inject("auditor", "r0");
	`
	ringAuditorScript = `
		total = 0;
		for (k = 0; k < $ndaemons; k++) {
			total = total + node.stamps;
			if (k < $ndaemons - 1) { hop(ll = "ring", ldir = +); }
		}
		for (k = 0; k < $ndaemons; k++) {
			delete(ll = "ring", ldir = +);
		}
	`
)

// runTracedRing runs the ring-token program on a simulated cluster with a
// fresh tracer and registry attached and returns both.
func runTracedRing(t *testing.T, daemons, laps int) (*Tracer, *Metrics) {
	t.Helper()
	tr := NewTracer()
	reg := NewMetrics()
	sys, err := NewSimSystem(Config{Daemons: daemons, Trace: tr, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	spec := NetSpec{}
	for i := 0; i < daemons; i++ {
		spec.Nodes = append(spec.Nodes, NetNode{Name: fmt.Sprintf("r%d", i), Daemon: i})
		spec.Links = append(spec.Links, NetLink{
			A: fmt.Sprintf("r%d", i), B: fmt.Sprintf("r%d", (i+1)%daemons),
			Name: "ring", Dir: 1,
		})
	}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}
	if err := sys.CompileAndRegister("token", ringTokenScript); err != nil {
		t.Fatal(err)
	}
	if err := sys.CompileAndRegister("auditor", ringAuditorScript); err != nil {
		t.Fatal(err)
	}
	err = sys.InjectAt(0, "token", "r0", map[string]Value{"laps": IntValue(int64(laps))})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunSim()
	for _, err := range sys.Errors() {
		t.Fatalf("runtime error: %v", err)
	}
	return tr, reg
}

// TestTraceDeterminism is the determinism guard: two identical simulated
// runs must export byte-identical Chrome traces. Trace timestamps come from
// the simulation kernel and the exporter emits events in recording order,
// so any divergence means the simulation itself has become nondeterministic.
func TestTraceDeterminism(t *testing.T) {
	export := func() []byte {
		tr, _ := runTracedRing(t, 4, 2)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Errorf("two identical sim runs exported different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// chromeEvent mirrors the trace_event fields the exporter writes.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Cat  string          `json:"cat"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	TS   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Args json.RawMessage `json:"args"`
}

// TestTraceExportGolden pins the Chrome exporter's output for a small
// ring-token run against testdata/ringtoken_trace.json (refresh with
// go test -run TraceExportGolden -update) and validates the trace_event
// schema: known phases, in-range tids, timestamps on every non-metadata
// event, and the event categories a full messenger lifecycle must produce.
func TestTraceExportGolden(t *testing.T) {
	tr, _ := runTracedRing(t, 3, 1)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "ringtoken_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exported trace differs from %s (run with -update after intentional changes)", golden)
	}

	var doc struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	cats := map[string]bool{}
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "X", "i", "C", "M":
		default:
			t.Fatalf("event %d: unknown phase %q", i, e.Ph)
		}
		if e.Name == "" {
			t.Fatalf("event %d: empty name", i)
		}
		// 3 daemons + the shared-bus track.
		if e.TID < 0 || e.TID > 3 {
			t.Fatalf("event %d: tid %d out of range", i, e.TID)
		}
		if e.Ph == "M" {
			continue
		}
		if e.TS == nil {
			t.Fatalf("event %d (%s): missing ts", i, e.Name)
		}
		if e.Ph == "X" && (e.Dur == nil || *e.Dur < 0) {
			t.Fatalf("event %d (%s): complete event needs dur >= 0", i, e.Name)
		}
		cats[e.Cat] = true
	}
	// net.send/net.recv events are TCP-transport-only; a simulated run
	// models the wire as lan "frame" spans on the bus track instead.
	for _, want := range []string{"msgr", "vm", "lan"} {
		if !cats[want] {
			t.Errorf("trace has no %q events (got %v)", want, cats)
		}
	}
}

// TestTraceMetricsAgree cross-checks the two observability surfaces: the
// event stream and the counter registry must describe the same run.
func TestTraceMetricsAgree(t *testing.T) {
	tr, reg := runTracedRing(t, 4, 2)
	count := func(name string) int64 {
		var n int64
		for _, e := range tr.Events() {
			if e.Name == name {
				n++
			}
		}
		return n
	}
	if got, want := count("hop.depart"), reg.CounterValue("msgr.hops.remote"); got != want {
		t.Errorf("hop.depart events = %d, msgr.hops.remote = %d", got, want)
	}
	if got, want := count("inject"), reg.CounterValue("msgr.injected"); got != want {
		t.Errorf("inject events = %d, msgr.injected = %d", got, want)
	}
	if got, want := count("frame"), reg.CounterValue("bus.msgs"); got != want {
		t.Errorf("frame spans = %d, bus.msgs = %d", got, want)
	}
}
