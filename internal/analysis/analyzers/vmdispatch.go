package analyzers

import (
	"go/ast"
	"go/types"

	"messengers/internal/analysis"
)

// vmdispatchAllowed are the packages that may touch the lowered instruction
// stream: the lowering pass that builds it and the dispatch engines that
// execute it. Everyone else programs against Program/Instr — the lowered
// form is derived, never serialized, and its operand meanings shift as
// superinstructions are added, so a use outside these packages is a layering
// leak that would quietly couple wire or daemon code to an encoding with no
// compatibility contract.
var vmdispatchAllowed = map[string]bool{
	"messengers/internal/bytecode": true,
	"messengers/internal/vm":       true,
}

// loweredBytecodePkg is the package whose lowered API is confined.
const loweredBytecodePkg = "messengers/internal/bytecode"

// loweredNames is the lowered-instruction API surface by name; DOp
// constants (DNop, DFLtJz, ...) are matched by their type instead, so the
// set does not chase every new superinstruction.
var loweredNames = map[string]bool{
	"Lowered":      true, // type and Program.Lowered method
	"DInstr":       true,
	"DFunc":        true,
	"DOp":          true,
	"NumDOps":      true,
	"Constituents": true,
}

// VMDispatch enforces the threaded-dispatch layering:
//
//  1. The lowered instruction API of internal/bytecode (Lowered, DInstr,
//     DFunc, DOp and its constants, Program.Lowered, Constituents) must not
//     be referenced outside internal/bytecode and internal/vm.
//  2. Inside internal/vm, a handler function literal registered into a
//     dispatch table from inside a loop must not capture the loop variable
//     directly: handlers are shared, long-lived closures, and the
//     registration pattern the package relies on routes loop state through
//     constructor parameters (see threaded.go), which keeps each closure's
//     dependencies explicit and survives any future change to loop-variable
//     scoping semantics.
//
// Suppress with //lint:vmdispatch.
var VMDispatch = &analysis.Analyzer{
	Name: "vmdispatch",
	Doc:  "lowered-instruction API confinement and handler-closure hygiene",
	Run:  runVMDispatch,
}

func runVMDispatch(pass *analysis.Pass) error {
	if !vmdispatchAllowed[pass.PkgPath] {
		checkLoweredConfinement(pass)
	}
	if pass.PkgPath == "messengers/internal/vm" {
		checkHandlerCaptures(pass)
	}
	return nil
}

// checkLoweredConfinement reports every reference to the lowered API from a
// package outside the allowed set.
func checkLoweredConfinement(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != loweredBytecodePkg {
				return true
			}
			if !isLoweredObj(obj) {
				return true
			}
			pass.Reportf(id.Pos(), "vmdispatch",
				"lowered-instruction internal %s.%s referenced outside internal/vm; program against Program/Instr instead",
				"bytecode", obj.Name())
			return true
		})
	}
}

// isLoweredObj reports whether obj belongs to the lowered API: a listed
// name, or any constant/value whose type is bytecode.DOp.
func isLoweredObj(obj types.Object) bool {
	if loweredNames[obj.Name()] {
		return true
	}
	if named, ok := obj.Type().(*types.Named); ok {
		tn := named.Obj()
		if tn.Name() == "DOp" && tn.Pkg() != nil && tn.Pkg().Path() == loweredBytecodePkg {
			return true
		}
	}
	return false
}

// checkHandlerCaptures flags `table[i] = func(...) {...}` registrations
// inside loops where the literal's body references a loop variable.
func checkHandlerCaptures(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			loopVars := map[types.Object]string{}
			switch s := n.(type) {
			case *ast.RangeStmt:
				body = s.Body
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = id.Name
						}
					}
				}
			case *ast.ForStmt:
				body = s.Body
				if init, ok := s.Init.(*ast.AssignStmt); ok {
					for _, e := range init.Lhs {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := pass.Info.Defs[id]; obj != nil {
								loopVars[obj] = id.Name
							}
						}
					}
				}
			default:
				return true
			}
			if len(loopVars) == 0 {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				assign, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range assign.Lhs {
					if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); !isIndex || i >= len(assign.Rhs) {
						continue
					}
					lit, ok := ast.Unparen(assign.Rhs[i]).(*ast.FuncLit)
					if !ok {
						continue
					}
					if name, captured := usesAny(pass, lit.Body, loopVars); captured {
						pass.Reportf(lit.Pos(), "vmdispatch",
							"handler closure captures loop variable %s; pass it through a constructor parameter", name)
					}
				}
				return true
			})
			return true
		})
	}
}

// usesAny reports whether any identifier in body resolves to one of vars.
func usesAny(pass *analysis.Pass, body *ast.BlockStmt, vars map[types.Object]string) (string, bool) {
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if name, ok := vars[pass.Info.Uses[id]]; ok {
				found = name
				return false
			}
		}
		return true
	})
	return found, found != ""
}
