package sim

import (
	"strings"
	"testing"
)

func TestProcAdvance(t *testing.T) {
	k := New()
	defer k.Shutdown()
	var marks []Time
	k.Spawn("worker", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Advance(100)
		marks = append(marks, p.Now())
		p.Advance(50)
		marks = append(marks, p.Now())
	})
	k.Run()
	want := []Time{0, 100, 150}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v, want %v", marks, want)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Errorf("marks[%d] = %v, want %v", i, marks[i], want[i])
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := New()
		defer k.Shutdown()
		var log []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				p.Advance(10)
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "b")
				p.Advance(15)
			}
		})
		k.Run()
		return log
	}
	first := run()
	for i := 0; i < 20; i++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("nondeterministic length: %v vs %v", got, first)
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", got, first)
			}
		}
	}
}

func TestMailboxBlockingReceive(t *testing.T) {
	k := New()
	defer k.Shutdown()
	mb := NewMailbox(k)
	var got []int
	var recvTimes []Time
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v := mb.Get(p).(int)
			got = append(got, v)
			recvTimes = append(recvTimes, p.Now())
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Advance(100)
			mb.Put(i)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("got = %v", got)
	}
	for i, at := range recvTimes {
		if want := Time(100 * (i + 1)); at != want {
			t.Errorf("recvTimes[%d] = %v, want %v", i, at, want)
		}
	}
	if k.Parked() != 0 {
		t.Errorf("Parked = %d at end", k.Parked())
	}
}

func TestMailboxPutFromEventCallback(t *testing.T) {
	k := New()
	defer k.Shutdown()
	mb := NewMailbox(k)
	var gotAt Time
	k.Spawn("c", func(p *Proc) {
		mb.Get(p)
		gotAt = p.Now()
	})
	k.At(77, func() { mb.Put("hello") })
	k.Run()
	if gotAt != 77 {
		t.Errorf("received at %v, want 77", gotAt)
	}
}

func TestMailboxTryGet(t *testing.T) {
	k := New()
	mb := NewMailbox(k)
	if _, ok := mb.TryGet(); ok {
		t.Error("TryGet on empty mailbox should fail")
	}
	mb.Put(1)
	mb.Put(2)
	if mb.Len() != 2 {
		t.Errorf("Len = %d", mb.Len())
	}
	if v, ok := mb.TryGet(); !ok || v.(int) != 1 {
		t.Errorf("TryGet = %v, %v", v, ok)
	}
}

func TestDeadlockedProcessIsReportedParked(t *testing.T) {
	k := New()
	defer k.Shutdown()
	mb := NewMailbox(k)
	k.Spawn("stuck", func(p *Proc) {
		mb.Get(p) // nothing will ever arrive
	})
	k.Run()
	if k.Parked() != 1 {
		t.Errorf("Parked = %d, want 1 (deadlock detection)", k.Parked())
	}
}

func TestShutdownUnwindsAllProcesses(t *testing.T) {
	k := New()
	mb := NewMailbox(k)
	cleaned := 0
	k.Spawn("parked", func(p *Proc) {
		defer func() { cleaned++ }()
		mb.Get(p)
	})
	k.Spawn("sleeping", func(p *Proc) {
		defer func() { cleaned++ }()
		p.Advance(1 << 40)
	})
	k.RunUntil(100)
	k.Shutdown()
	if cleaned != 2 {
		t.Errorf("cleaned = %d, want 2", cleaned)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := New()
	defer k.Shutdown()
	k.Spawn("bad", func(p *Proc) {
		p.Advance(10)
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Error("process panic should propagate out of Run")
		}
	}()
	k.Run()
}

func TestUnparkNonParkedPanics(t *testing.T) {
	k := New()
	defer k.Shutdown()
	var target *Proc
	target = k.Spawn("idle", func(p *Proc) { p.Advance(1000) })
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("Unpark of running process should panic")
			}
		}()
		target.Unpark()
	})
	k.Run()
}

func TestProcNameAndKernel(t *testing.T) {
	k := New()
	defer k.Shutdown()
	k.Spawn("n1", func(p *Proc) {
		if p.Name() != "n1" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel() mismatch")
		}
	})
	k.Run()
}

func TestNegativeAdvancePanics(t *testing.T) {
	k := New()
	defer k.Shutdown()
	k.Spawn("neg", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative Advance should panic")
			}
		}()
		p.Advance(-1)
	})
	func() {
		defer func() { recover() }() // the re-panic from the proc wrapper
		k.Run()
	}()
}

// TestProcPanicCarriesStack: a panicking process surfaces through
// Kernel.Step as a ProcPanic whose captured stack names the faulty process
// function — not just the kernel's event loop.
func TestProcPanicCarriesStack(t *testing.T) {
	k := New()
	k.Spawn("boomer", faultyProcFunction)
	defer func() {
		r := recover()
		pp, ok := r.(*ProcPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *ProcPanic", r, r)
		}
		if pp.Proc != "boomer" {
			t.Errorf("Proc = %q", pp.Proc)
		}
		if pp.Value != "kaboom" {
			t.Errorf("Value = %v", pp.Value)
		}
		if !strings.Contains(string(pp.Stack), "faultyProcFunction") {
			t.Errorf("stack does not name the faulty proc function:\n%s", pp.Stack)
		}
		if msg := pp.Error(); !strings.Contains(msg, "boomer") || !strings.Contains(msg, "kaboom") {
			t.Errorf("Error() = %q", msg)
		}
	}()
	k.Run()
	t.Fatal("Run returned despite a process panic")
}

func faultyProcFunction(p *Proc) {
	p.Advance(5)
	panic("kaboom")
}
