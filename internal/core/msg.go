package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"messengers/internal/bytecode"
	"messengers/internal/logical"
)

// MsgKind discriminates daemon-to-daemon messages.
type MsgKind uint8

// Message kinds.
const (
	// MsgMessenger carries a hopping Messenger: program hash + VM snapshot.
	MsgMessenger MsgKind = iota + 1
	// MsgCreate carries a Messenger together with a request to create the
	// logical node it will continue in.
	MsgCreate
	// MsgCreateAck completes the origin's half-link after a remote create.
	MsgCreateAck
	// MsgInject delivers an externally injected Messenger to a daemon.
	MsgInject
	// MsgProgram distributes a compiled script to a daemon's registry (the
	// shared-file-system substitute in distributed deployments).
	MsgProgram
	// MsgGVTNotify tells the coordinator that a daemon has suspended a
	// Messenger on virtual time (so GVT rounds should run).
	MsgGVTNotify
	// MsgGVTQuery asks a daemon for its GVT report.
	MsgGVTQuery
	// MsgGVTReport answers a query with local minimum and message counts.
	MsgGVTReport
	// MsgGVTAdvance broadcasts a new global virtual time.
	MsgGVTAdvance
	// MsgHalt broadcasts that the computation is quiescent.
	MsgHalt
)

// String names the kind.
func (k MsgKind) String() string {
	names := map[MsgKind]string{
		MsgMessenger: "messenger", MsgCreate: "create", MsgCreateAck: "create-ack",
		MsgInject: "inject", MsgProgram: "program", MsgGVTNotify: "gvt-notify",
		MsgGVTQuery: "gvt-query", MsgGVTReport: "gvt-report",
		MsgGVTAdvance: "gvt-advance", MsgHalt: "halt",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// Msg is one daemon-to-daemon message. A single struct covers all kinds;
// unused fields stay zero. It has a deterministic binary encoding for the
// TCP transport and for wire-size accounting in the simulator.
type Msg struct {
	Kind MsgKind
	From int

	// Messenger payload (MsgMessenger, MsgCreate, MsgInject).
	ProgHash bytecode.Hash
	Snapshot []byte
	MsgrID   uint64
	LVT      float64
	// DestNode is the target logical node (MsgMessenger).
	DestNode logical.NodeID
	// Last is the link name to expose as $last at the destination.
	Last string
	// RemoveLink, when nonzero, is the half-link to delete at the
	// destination node before the Messenger runs (delete traversal).
	RemoveLink logical.LinkID

	// Create request (MsgCreate).
	CreateName string
	LinkID     logical.LinkID
	LinkName   string
	LinkDir    uint8 // 0 undirected, 1 origin->new, 2 new->origin
	Origin     logical.Addr
	OriginName string

	// Create ack (MsgCreateAck): LinkID above plus the new node.
	AckPeer     logical.Addr
	AckPeerName string

	// Program distribution (MsgProgram).
	ProgBytes []byte

	// GVT fields (MsgGVT*).
	GEpoch  int64
	GMin    float64
	GSent   int64
	GRecv   int64
	GActive int64
	GVT     float64
}

// CarriesMessenger reports whether this message transfers computation (and
// therefore participates in GVT transient counting).
func (m *Msg) CarriesMessenger() bool {
	return m.Kind == MsgMessenger || m.Kind == MsgCreate || m.Kind == MsgInject
}

// Encode serializes the message.
func (m *Msg) Encode() []byte {
	buf := make([]byte, 0, 64+len(m.Snapshot)+len(m.ProgBytes))
	buf = append(buf, byte(m.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.From))
	buf = append(buf, m.ProgHash[:]...)
	buf = appendBytes(buf, m.Snapshot)
	buf = binary.LittleEndian.AppendUint64(buf, m.MsgrID)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.LVT))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.DestNode))
	buf = appendStr(buf, m.Last)
	buf = appendLinkID(buf, m.RemoveLink)
	buf = appendStr(buf, m.CreateName)
	buf = appendLinkID(buf, m.LinkID)
	buf = appendStr(buf, m.LinkName)
	buf = append(buf, m.LinkDir)
	buf = appendAddr(buf, m.Origin)
	buf = appendStr(buf, m.OriginName)
	buf = appendAddr(buf, m.AckPeer)
	buf = appendStr(buf, m.AckPeerName)
	buf = appendBytes(buf, m.ProgBytes)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.GEpoch))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.GMin))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.GSent))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.GRecv))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.GActive))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.GVT))
	return buf
}

// WireSize is the size charged on the simulated network. Control messages
// are charged a small fixed size rather than their padded struct encoding.
func (m *Msg) WireSize() int {
	switch m.Kind {
	case MsgMessenger, MsgCreate, MsgInject:
		return 48 + len(m.Snapshot) + len(m.Last) + len(m.CreateName) + len(m.LinkName) + len(m.ProgBytes)
	case MsgProgram:
		return 32 + len(m.ProgBytes)
	default:
		return 64
	}
}

// DecodeMsg deserializes a message produced by Encode.
func DecodeMsg(buf []byte) (*Msg, error) {
	r := &msgReader{buf: buf}
	m := &Msg{}
	m.Kind = MsgKind(r.u8())
	m.From = int(r.u32())
	r.read(m.ProgHash[:])
	m.Snapshot = r.bytes()
	m.MsgrID = r.u64()
	m.LVT = math.Float64frombits(r.u64())
	m.DestNode = logical.NodeID(r.u64())
	m.Last = r.str()
	m.RemoveLink = r.linkID()
	m.CreateName = r.str()
	m.LinkID = r.linkID()
	m.LinkName = r.str()
	m.LinkDir = r.u8()
	m.Origin = r.addr()
	m.OriginName = r.str()
	m.AckPeer = r.addr()
	m.AckPeerName = r.str()
	m.ProgBytes = r.bytes()
	m.GEpoch = int64(r.u64())
	m.GMin = math.Float64frombits(r.u64())
	m.GSent = int64(r.u64())
	m.GRecv = int64(r.u64())
	m.GActive = int64(r.u64())
	m.GVT = math.Float64frombits(r.u64())
	if r.err != nil {
		return nil, fmt.Errorf("core: decode %v message: %w", m.Kind, r.err)
	}
	return m, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func appendLinkID(buf []byte, id logical.LinkID) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id.Daemon))
	return binary.LittleEndian.AppendUint64(buf, id.Seq)
}

func appendAddr(buf []byte, a logical.Addr) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Daemon))
	return binary.LittleEndian.AppendUint64(buf, uint64(a.Node))
}

type msgReader struct {
	buf []byte
	pos int
	err error
}

func (r *msgReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated at byte %d", r.pos)
	}
}

func (r *msgReader) u8() uint8 {
	if r.pos+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *msgReader) u32() uint32 {
	if r.pos+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *msgReader) u64() uint64 {
	if r.pos+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *msgReader) read(dst []byte) {
	if r.pos+len(dst) > len(r.buf) {
		r.fail()
		return
	}
	copy(dst, r.buf[r.pos:])
	r.pos += len(dst)
}

func (r *msgReader) str() string {
	n := int(r.u32())
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *msgReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.pos:])
	r.pos += n
	return b
}

func (r *msgReader) linkID() logical.LinkID {
	return logical.LinkID{Daemon: int(r.u32()), Seq: r.u64()}
}

func (r *msgReader) addr() logical.Addr {
	return logical.Addr{Daemon: int(r.u32()), Node: logical.NodeID(r.u64())}
}
