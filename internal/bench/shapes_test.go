package bench

import (
	"testing"

	"messengers/internal/lan"
)

// These tests pin the qualitative results of the paper's evaluation — who
// wins, where the crossovers fall, how speedups scale — against the frozen
// cost model. EXPERIMENTS.md records measured-vs-paper for every claim.

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep skipped in -short")
	}
	cm := lan.DefaultCostModel()
	f, err := RunMandelFigure(cm, Fig7Sweep(false))
	if err != nil {
		t.Fatal(err)
	}
	last := len(f.Sweep.Procs) - 1
	// MESSENGERS must beat PVM at the coarsest granularity, with the gap
	// widening as processors are added.
	if r := f.MsgrOverPVM(0, last); r <= 1.05 {
		t.Errorf("M/PVM at 32 procs = %.2f, want clearly > 1", r)
	}
	if f.MsgrOverPVM(0, last) <= f.MsgrOverPVM(0, 0) {
		t.Error("MESSENGERS advantage should grow with processor count")
	}
	// Times must decrease monotonically with processors for both systems.
	for pi := 1; pi <= last; pi++ {
		if f.Msgr[0][pi] >= f.Msgr[0][pi-1] {
			t.Errorf("MESSENGERS time not decreasing at P=%d", f.Sweep.Procs[pi])
		}
		if f.PVM[0][pi] >= f.PVM[0][pi-1] {
			t.Errorf("PVM time not decreasing at P=%d", f.Sweep.Procs[pi])
		}
	}
	// The speedup ceiling of this decomposition is the heaviest 160x160
	// block (~5.7% of all iterations); 32 workers should get close to it.
	if s := f.SpeedupOverSeq(0, last); s < 14 {
		t.Errorf("speedup at 32 procs = %.1f, want >= 14", s)
	}
}

func TestFig4FineGridFavorsPVMAtLowProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep skipped in -short")
	}
	cm := lan.DefaultCostModel()
	f, err := RunMandelFigure(cm, MandelSweep{
		Name: "fine-grid check", Size: 320, Grids: []int{32}, Procs: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "PVM is slightly better when the grid is finer" — at the
	// finest grid and low processor counts PVM should be at least
	// competitive (within a few percent) or ahead.
	for pi := range f.Sweep.Procs {
		if r := f.MsgrOverPVM(0, pi); r > 1.10 {
			t.Errorf("fine grid P=%d: M/PVM = %.2f; PVM should be competitive", f.Sweep.Procs[pi], r)
		}
	}
}

func TestFig12aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep skipped in -short")
	}
	cm := lan.DefaultCostModel()
	f, err := RunMatmulFigure(cm, Fig12aSweep(false))
	if err != nil {
		t.Fatal(err)
	}
	cross := f.Crossover()
	if cross < 50 || cross > 200 {
		t.Errorf("Fig 12(a) crossover at block %d, want within [50, 200] (paper ~150)", cross)
	}
	// Below the crossover PVM wins; above, MESSENGERS stays ahead.
	for i, s := range f.Sweep.BlockSizes {
		if s >= 2*cross && f.Msgr[i] >= f.PVM[i] {
			t.Errorf("block %d: MESSENGERS should stay ahead past the crossover", s)
		}
	}
	ob, on, ok := f.SpeedupAt(500)
	if !ok {
		t.Fatal("sweep missing block size 500")
	}
	if ob < 2.7 || ob > 4.5 {
		t.Errorf("n=1000 speedup over seq block = %.1f, want near 3.7", ob)
	}
	if on < 3.2 || on > 5.5 {
		t.Errorf("n=1000 speedup over seq naive = %.1f, want near 4.5", on)
	}
	if on <= ob {
		t.Error("speedup over naive must exceed speedup over block (cache model)")
	}
}

func TestFig12bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep skipped in -short")
	}
	cm := lan.DefaultCostModel()
	f, err := RunMatmulFigure(cm, Fig12bSweep(false))
	if err != nil {
		t.Fatal(err)
	}
	cross := f.Crossover()
	if cross < 10 || cross > 100 {
		t.Errorf("Fig 12(b) crossover at block %d, want within [10, 100] (paper ~20)", cross)
	}
	ob, on, ok := f.SpeedupAt(500)
	if !ok {
		t.Fatal("sweep missing block size 500")
	}
	if ob < 4.5 || ob > 9 {
		t.Errorf("n=1500 speedup over seq block = %.1f, want near 5.8", ob)
	}
	if on < 5.2 || on > 9 {
		t.Errorf("n=1500 speedup over seq naive = %.1f, want near 6.7", on)
	}
}

func TestT1SequentialBlockBeatNaive(t *testing.T) {
	cm := lan.DefaultCostModel()
	// §3.2: partitioning a 1500x1500 multiply into 9 blocks gives a
	// speedup on a SPARCstation 5 (the paper reports ~13%; our cache
	// curve, calibrated against the paper's n=1000 ratio, gives ~20-25%).
	f, err := RunMatmulFigure(cm, MatmulSweep{
		Name: "T1", M: 3, Host: lan.SPARC110, BlockSizes: []int{500},
	})
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(f.SeqNaive[0])/float64(f.SeqBlock[0]) - 1
	if gain < 0.05 || gain > 0.40 {
		t.Errorf("block-partition gain = %.1f%%, want 5-40%%", gain*100)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "22"}, {"333", "4"}},
	}
	txt := tb.Format()
	if txt == "" || tb.CSV() != "a,b\n1,22\n333,4\n" {
		t.Errorf("rendering wrong:\n%s\n%s", txt, tb.CSV())
	}
}
