// Package transport provides the TCP engine: daemons exchange Messengers
// over real sockets using the framed binary wire format, exactly as the
// paper's daemons exchange Messengers over a LAN.
//
// The engine drives the same daemon logic as the in-process channel engine;
// what changes is that every inter-daemon message is actually encoded,
// framed, written to a socket, read back, and decoded — so the full wire
// path (vm snapshots, program hashes, link identities, GVT control
// messages) is exercised for real. Daemons listen on per-daemon TCP
// addresses (loopback by default) and dial peers lazily, with exponential
// backoff on redials.
//
// For chaos testing the engine supports fault injection on the send path
// (SetFaultHook), daemon kill/revive (KillDaemon/ReviveDaemon), and
// heartbeat-based peer failure detection (StartHeartbeats) that feeds the
// core recovery layer's PeerDown/PeerUp.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"messengers/internal/backoff"
	"messengers/internal/core"
	"messengers/internal/lan"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/wire"
)

// Frame constants now live in internal/wire (the layout is shared with the
// pooled encoder); these aliases keep the transport's vocabulary.
const (
	frameMagic = wire.FrameMagic
	maxFrame   = wire.MaxFrame
)

// maxErrors bounds the retained transport error log: a flapping link under
// chaos would otherwise grow the slice without limit. Older errors are
// evicted first; the number evicted is surfaced as the
// transport.errors.dropped counter and by ErrorsDropped.
const maxErrors = 64

// WriteFrame writes one length-prefixed message frame. The message send
// path encodes header and payload into a single pooled buffer instead (see
// Send); this helper remains for hello frames and out-of-band uses.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [wire.FrameHeaderLen]byte
	binary.LittleEndian.PutUint16(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint16(hdr[2:], wire.FrameVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame (or by Msg.EncodeFrame).
// The returned payload is a fresh slice the caller owns — decoded messages
// may alias it, so it is never pooled.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [wire.FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint16(hdr[0:]) != frameMagic {
		return nil, fmt.Errorf("transport: bad frame magic %#x", hdr[:2])
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: read frame body: %w", err)
	}
	return payload, nil
}

// FaultVerdict is the outcome of consulting the fault hook for one frame.
type FaultVerdict struct {
	// Drop silently discards the frame.
	Drop bool
	// Corrupt models a frame damaged in transit: the receiver would reject
	// it and reset the stream, so the engine tears the connection down
	// (exercising redial) instead of writing garbage.
	Corrupt bool
	// Dup writes the frame twice.
	Dup bool
	// DelayNs postpones the write by this many nanoseconds.
	DelayNs int64
}

// FaultHook inspects one outbound frame and decides its fate (package
// faults provides a seeded implementation; adapt it in the caller). nowNs
// is engine time: nanoseconds since engine start.
type FaultHook func(nowNs int64, src, dst, size int) FaultVerdict

// TCPEngine is a core.Engine whose daemon-to-daemon messages travel over
// real TCP connections. Each daemon has a listener; connections to peers
// are dialed on first use and kept open.
type TCPEngine struct {
	addrs   []string
	daemons []*core.Daemon

	// executors are the daemons' sharded serial queues (core.ExecQueue):
	// socket readers, timers, and local continuations feed separate lanes,
	// so a storm of inbound hops never contends with GVT control delivery
	// on one mutex.
	executors []*core.ExecQueue

	start time.Time
	tr    *obs.Tracer

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[connKey]*peerConn
	killed    []bool
	dials     map[connKey]*dialState
	fault     FaultHook
	errs      []error
	errsNext  int
	errsLost  int64

	hb *heartbeats

	// errsDropped/reconnects are nil-safe obs counters (SetMetrics).
	errsDropped, reconnects *obs.Counter

	closed  chan struct{}
	closeMu sync.Once
	// execWG tracks the executor runners (drained first on Close so queued
	// daemon work finishes while the network is still up); netWG tracks
	// accept loops, connection readers, and the heartbeat ticker.
	execWG, netWG sync.WaitGroup
}

type connKey struct{ from, to int }

type peerConn struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

// dialState is per-ordered-pair redial backoff.
type dialState struct {
	fails     int
	notBefore time.Time
}

// NewTCPEngine starts listeners for n daemons on the given addresses (one
// per daemon; use "127.0.0.1:0" entries for ephemeral ports).
func NewTCPEngine(addrs []string) (*TCPEngine, error) {
	e := &TCPEngine{
		addrs:     make([]string, len(addrs)),
		conns:     map[connKey]*peerConn{},
		dials:     map[connKey]*dialState{},
		killed:    make([]bool, len(addrs)),
		closed:    make(chan struct{}),
		executors: make([]*core.ExecQueue, len(addrs)),
		listeners: make([]net.Listener, len(addrs)),
		start:     time.Now(),
	}
	for i, addr := range addrs {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("transport: daemon %d listen %s: %w", i, addr, err)
		}
		e.listeners[i] = l
		e.addrs[i] = l.Addr().String()
		e.executors[i] = core.NewExecQueue()
	}
	for i := range addrs {
		i := i
		e.execWG.Add(1)
		go func() {
			defer e.execWG.Done()
			e.executors[i].Run()
		}()
		e.netWG.Add(1)
		go func(l net.Listener) {
			defer e.netWG.Done()
			e.acceptLoop(i, l)
		}(e.listeners[i])
	}
	return e, nil
}

// Addrs returns the bound listener addresses, indexed by daemon ID.
func (e *TCPEngine) Addrs() []string {
	out := make([]string, len(e.addrs))
	copy(out, e.addrs)
	return out
}

// Bind implements the engine binder.
func (e *TCPEngine) Bind(daemons []*core.Daemon) { e.daemons = daemons }

// SetTracer attaches a tracer: every frame send and receive emits a "net"
// event on the involved daemon's track. Call before any traffic flows.
func (e *TCPEngine) SetTracer(t *obs.Tracer) { e.tr = t }

// SetMetrics attaches a registry for the transport's own counters
// (transport.errors.dropped, net.reconnects). Call before traffic flows.
func (e *TCPEngine) SetMetrics(m *obs.Metrics) {
	e.errsDropped = m.Counter("transport.errors.dropped")
	e.reconnects = m.Counter("net.reconnects")
}

// SetFaultHook installs a fault-injection hook consulted for every outbound
// frame. Call before traffic flows; pass nil to restore clean delivery.
func (e *TCPEngine) SetFaultHook(h FaultHook) {
	e.mu.Lock()
	e.fault = h
	e.mu.Unlock()
}

// Now implements core.Engine with monotonic wall time since engine start.
func (e *TCPEngine) Now() sim.Time { return sim.Time(time.Since(e.start)) }

// NumDaemons implements core.Engine.
func (e *TCPEngine) NumDaemons() int { return len(e.addrs) }

// Exec implements core.Engine (costs are ignored: real work, real time).
func (e *TCPEngine) Exec(d int, _ sim.Time, fn func()) { e.executors[d].Put(core.LaneLocal, fn) }

// Model implements core.Engine.
func (e *TCPEngine) Model() *lan.CostModel { return nil }

// HostSpec implements core.Engine.
func (e *TCPEngine) HostSpec(int) lan.HostSpec { return lan.HostSpec{} }

// SetTimer implements core.Engine with wall-clock timers.
func (e *TCPEngine) SetTimer(d int, delay sim.Time, fn func()) {
	time.AfterFunc(time.Duration(delay), func() {
		select {
		case <-e.closed:
		default:
			e.executors[d].Put(core.LaneControl, fn)
		}
	})
}

// Send implements core.Engine: encode header and payload into one pooled
// frame (a Messenger carried by XferVM is serialized here, in a single
// pass, with no intermediate snapshot slice) and ship it over the (cached)
// connection from src to dst. Frames to or from a killed daemon vanish, as
// they would with a dead process; a write failure tears the connection down
// so the next send redials.
func (e *TCPEngine) Send(src, dst int, msg *core.Msg) {
	if e.isKilled(src) || e.isKilled(dst) {
		return
	}
	enc := wire.NewEncoder()
	defer enc.Release()
	if err := msg.EncodeFrame(enc); err != nil {
		e.recordError(fmt.Errorf("transport: encode %v message to daemon %d: %w", msg.Kind, dst, err))
		return
	}
	size := enc.Len() - wire.FrameHeaderLen
	if h := e.faultHook(); h != nil {
		v := h(int64(e.Now()), src, dst, size)
		switch {
		case v.Drop:
			return
		case v.Corrupt:
			// A damaged frame makes the receiver reset the stream: model it
			// by tearing the connection down instead of writing, exercising
			// the redial path.
			e.dropConn(src, dst)
			return
		case v.DelayNs > 0:
			frame := append([]byte(nil), enc.Bytes()...)
			dup := v.Dup
			time.AfterFunc(time.Duration(v.DelayNs), func() {
				select {
				case <-e.closed:
					return
				default:
				}
				e.writeFrame(src, dst, frame)
				if dup {
					e.writeFrame(src, dst, frame)
				}
			})
			return
		}
		if v.Dup {
			e.writeFrame(src, dst, enc.Bytes())
		}
	}
	if e.tr != nil && msg.Kind != core.MsgHeartbeat {
		e.tr.Instant(src, "net", "net.send", obs.I("to", int64(dst)), obs.I("bytes", int64(size)))
	}
	e.writeFrame(src, dst, enc.Bytes())
}

func (e *TCPEngine) faultHook() FaultHook {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fault
}

// writeFrame ships one already-encoded frame over the cached connection,
// tearing the connection down on failure so the next send redials.
func (e *TCPEngine) writeFrame(src, dst int, frame []byte) {
	pc, err := e.conn(src, dst)
	if err != nil {
		e.recordError(err)
		return
	}
	pc.mu.Lock()
	// bufio either copies into its buffer or writes straight through before
	// returning, so the pooled frame can be recycled after the flush.
	_, werr := pc.w.Write(frame)
	if werr == nil {
		werr = pc.w.Flush()
	}
	pc.mu.Unlock()
	if werr != nil {
		e.recordError(fmt.Errorf("transport: write frame %d->%d: %w", src, dst, werr))
		e.dropConn(src, dst)
	}
}

// conn returns the cached connection src->dst, dialing it if needed. A
// dedicated connection per ordered pair preserves FIFO delivery. Failed
// dials back off exponentially with per-pair jitter (50ms doubling to 2s);
// a successful redial after failures counts as a reconnect.
func (e *TCPEngine) conn(src, dst int) (*peerConn, error) {
	key := connKey{from: src, to: dst}
	e.mu.Lock()
	if pc, ok := e.conns[key]; ok {
		e.mu.Unlock()
		return pc, nil
	}
	select {
	case <-e.closed:
		// A dial racing Close must not register a connection the teardown
		// already missed — its reader would outlive the engine.
		e.mu.Unlock()
		return nil, fmt.Errorf("transport: dial daemon %d: engine closed", dst)
	default:
	}
	ds := e.dials[key]
	if ds == nil {
		ds = &dialState{}
		e.dials[key] = ds
	}
	if ds.fails > 0 && time.Now().Before(ds.notBefore) {
		e.mu.Unlock()
		return nil, fmt.Errorf("transport: dial daemon %d: backing off after %d failures", dst, ds.fails)
	}
	addr := e.addrs[dst]
	e.mu.Unlock()

	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err == nil {
		// Identify the destination daemon on this listener (one listener
		// per daemon, so the hello frame only carries the sender for
		// diagnostics).
		if herr := WriteFrame(c, []byte{byte(src)}); herr != nil {
			c.Close()
			err = herr
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if err != nil {
		ds.fails++
		// Jittered per (pair, attempt): after a partition heals, every
		// surviving pair would otherwise redial on the same doubling
		// schedule and collide (see internal/backoff).
		ds.notBefore = time.Now().Add(
			backoff.Jittered(50*time.Millisecond, 2*time.Second, ds.fails, backoff.Key(src, dst, ds.fails, 0)))
		return nil, fmt.Errorf("transport: dial daemon %d: %w", dst, err)
	}
	if other, ok := e.conns[key]; ok {
		// A concurrent Send dialed the same pair; keep the first.
		c.Close()
		return other, nil
	}
	select {
	case <-e.closed:
		c.Close()
		return nil, fmt.Errorf("transport: dial daemon %d: engine closed", dst)
	default:
	}
	if ds.fails > 0 {
		ds.fails = 0
		e.reconnects.Inc()
	}
	pc := &peerConn{c: c, w: bufio.NewWriter(c)}
	e.conns[key] = pc
	return pc, nil
}

// dropConn discards the cached connection src->dst (if any) so the next
// send redials.
func (e *TCPEngine) dropConn(src, dst int) {
	key := connKey{from: src, to: dst}
	e.mu.Lock()
	pc, ok := e.conns[key]
	if ok {
		delete(e.conns, key)
	}
	e.mu.Unlock()
	if ok {
		pc.c.Close()
	}
}

// acceptLoop receives frames for daemon d on listener l and dispatches them
// on its executor. A frame that fails to decode is skipped (the
// length-prefixed framing keeps the stream aligned), not fatal to the
// connection.
func (e *TCPEngine) acceptLoop(d int, l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			select {
			case <-e.closed:
				return
			default:
			}
			if e.isKilled(d) {
				return // KillDaemon closed the listener
			}
			e.recordError(fmt.Errorf("transport: daemon %d accept: %w", d, err))
			return
		}
		e.netWG.Add(1)
		go func() {
			defer e.netWG.Done()
			defer c.Close()
			r := bufio.NewReader(c)
			if _, err := ReadFrame(r); err != nil {
				return // bad hello
			}
			for {
				payload, err := ReadFrame(r)
				if err != nil {
					return // peer closed or stream desynced
				}
				msg, err := core.DecodeMsg(payload)
				if err != nil {
					e.recordError(fmt.Errorf("transport: daemon %d: %w", d, err))
					continue
				}
				if msg.Kind == core.MsgHeartbeat {
					e.noteHeartbeat(d, msg.From)
					continue
				}
				if e.tr != nil {
					e.tr.Instant(d, "net", "net.recv",
						obs.I("from", int64(msg.From)), obs.I("bytes", int64(len(payload))))
				}
				e.executors[d].Put(core.LaneFor(msg.Kind), func() { e.daemons[d].HandleMsg(msg) })
			}
		}()
	}
}

func (e *TCPEngine) recordError(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.errs) < maxErrors {
		e.errs = append(e.errs, err)
		return
	}
	// Ring: evict the oldest.
	e.errs[e.errsNext] = err
	e.errsNext = (e.errsNext + 1) % maxErrors
	e.errsLost++
	e.errsDropped.Inc()
}

// Errors returns the retained transport-level errors, oldest first. At most
// maxErrors are kept; ErrorsDropped counts evictions.
func (e *TCPEngine) Errors() []error {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]error, 0, len(e.errs))
	for i := 0; i < len(e.errs); i++ {
		out = append(out, e.errs[(e.errsNext+i)%len(e.errs)])
	}
	return out
}

// ErrorsDropped returns how many errors were evicted from the bounded log.
func (e *TCPEngine) ErrorsDropped() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.errsLost
}

// --- daemon kill / revive (chaos support) ---

func (e *TCPEngine) isKilled(d int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.killed[d]
}

// KillDaemon severs daemon d from the network: its listener closes and
// every connection touching it is torn down. Frames to or from it vanish.
// The daemon's executor keeps running (the core's down flag gates it); call
// core's Crash alongside. No-op if already killed.
func (e *TCPEngine) KillDaemon(d int) {
	e.mu.Lock()
	if e.killed[d] {
		e.mu.Unlock()
		return
	}
	e.killed[d] = true
	l := e.listeners[d]
	var drop []*peerConn
	for key, pc := range e.conns {
		if key.from == d || key.to == d {
			drop = append(drop, pc)
			delete(e.conns, key)
		}
	}
	e.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, pc := range drop {
		pc.c.Close()
	}
	if e.hb != nil {
		e.hb.reset(d)
	}
}

// ReviveDaemon reattaches a killed daemon: a new listener binds the same
// address and heartbeats resume, which is what lets the survivors' failure
// detectors declare it back. Call core's Restart alongside.
func (e *TCPEngine) ReviveDaemon(d int) error {
	e.mu.Lock()
	if !e.killed[d] {
		e.mu.Unlock()
		return nil
	}
	addr := e.addrs[d]
	e.mu.Unlock()

	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: revive daemon %d: %w", d, err)
	}

	e.mu.Lock()
	e.listeners[d] = l
	e.killed[d] = false
	for key, ds := range e.dials {
		if key.from == d || key.to == d {
			ds.fails = 0
			ds.notBefore = time.Time{}
		}
	}
	e.mu.Unlock()
	if e.hb != nil {
		e.hb.reset(d)
	}

	e.netWG.Add(1)
	go func() {
		defer e.netWG.Done()
		e.acceptLoop(d, l)
	}()
	return nil
}

// --- heartbeat failure detection ---

type hbKey struct{ observer, peer int }

type heartbeats struct {
	deadAfter time.Duration
	mu        sync.Mutex
	lastSeen  map[hbKey]time.Time
	down      map[hbKey]bool
}

// reset clears failure-detector state involving daemon d (kill or revive):
// observers get a fresh grace period before re-declaring it dead, and d
// itself forgets stale observations from its downtime.
func (h *heartbeats) reset(d int) {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	for k := range h.lastSeen {
		if k.observer == d || k.peer == d {
			h.lastSeen[k] = now
		}
	}
	for k := range h.down {
		if k.observer == d {
			delete(h.down, k)
		}
	}
}

// StartHeartbeats begins periodic liveness probing: every interval each
// live daemon sends a MsgHeartbeat to every other live daemon (subject to
// the fault hook, like all traffic); a daemon silent for deadAfter is
// declared dead to each observer via core's PeerDown, and a heartbeat from
// a declared-dead daemon revives it via PeerUp. Call once, after Bind.
func (e *TCPEngine) StartHeartbeats(interval, deadAfter time.Duration) {
	if e.hb != nil {
		return
	}
	hb := &heartbeats{
		deadAfter: deadAfter,
		lastSeen:  map[hbKey]time.Time{},
		down:      map[hbKey]bool{},
	}
	now := time.Now()
	n := e.NumDaemons()
	for o := 0; o < n; o++ {
		for p := 0; p < n; p++ {
			if o != p {
				hb.lastSeen[hbKey{observer: o, peer: p}] = now
			}
		}
	}
	e.hb = hb
	e.netWG.Add(1)
	go func() {
		defer e.netWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-e.closed:
				return
			case <-t.C:
				e.hbTick()
			}
		}
	}()
}

// noteHeartbeat records a heartbeat received by observer from peer,
// reviving a declared-dead peer.
func (e *TCPEngine) noteHeartbeat(observer, peer int) {
	hb := e.hb
	if hb == nil {
		return
	}
	key := hbKey{observer: observer, peer: peer}
	hb.mu.Lock()
	hb.lastSeen[key] = time.Now()
	wasDown := hb.down[key]
	if wasDown {
		delete(hb.down, key)
	}
	hb.mu.Unlock()
	if wasDown {
		e.executors[observer].Put(core.LaneControl, func() { e.daemons[observer].PeerUp(peer) })
	}
}

// hbTick sends one round of heartbeats and sweeps for silent peers.
func (e *TCPEngine) hbTick() {
	n := e.NumDaemons()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst {
				e.Send(src, dst, &core.Msg{Kind: core.MsgHeartbeat, From: src})
			}
		}
	}
	hb := e.hb
	now := time.Now()
	type event struct{ observer, peer int }
	var deaths []event
	hb.mu.Lock()
	for key, seen := range hb.lastSeen {
		if hb.down[key] || e.isKilled(key.observer) {
			continue
		}
		if now.Sub(seen) > hb.deadAfter {
			hb.down[key] = true
			deaths = append(deaths, event{key.observer, key.peer})
		}
	}
	hb.mu.Unlock()
	for _, ev := range deaths {
		ev := ev
		e.executors[ev.observer].Put(core.LaneControl, func() { e.daemons[ev.observer].PeerDown(ev.peer) })
	}
}

// Close shuts down the engine: executors first — queued daemon work drains
// while the network is still up, so in-flight handler sends still go out —
// then listeners, connections, and the network goroutines.
func (e *TCPEngine) Close() {
	e.closeMu.Do(func() {
		close(e.closed)
		for _, ex := range e.executors {
			if ex != nil {
				ex.Close()
			}
		}
		e.execWG.Wait()
		e.mu.Lock()
		listeners := append([]net.Listener(nil), e.listeners...)
		conns := make([]*peerConn, 0, len(e.conns))
		for _, pc := range e.conns {
			conns = append(conns, pc)
		}
		e.conns = map[connKey]*peerConn{}
		e.mu.Unlock()
		for _, l := range listeners {
			if l != nil {
				l.Close()
			}
		}
		for _, pc := range conns {
			pc.c.Close()
		}
		e.netWG.Wait()
	})
}
