package script

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParseAssignments(t *testing.T) {
	s := mustParse(t, `x = 1; node.y = x + 2; msgr.z = "s"; a[0] = 3; x += 1; x--;`)
	if len(s.Body) != 6 {
		t.Fatalf("got %d statements", len(s.Body))
	}
	a0 := s.Body[0].(*AssignStmt)
	if v := a0.Target.(*VarExpr); v.Space != SpaceAuto || v.Name != "x" {
		t.Errorf("stmt 0 target = %+v", v)
	}
	a1 := s.Body[1].(*AssignStmt)
	if v := a1.Target.(*VarExpr); v.Space != SpaceNode || v.Name != "y" {
		t.Errorf("stmt 1 target = %+v", v)
	}
	a2 := s.Body[2].(*AssignStmt)
	if v := a2.Target.(*VarExpr); v.Space != SpaceMsgr || v.Name != "z" {
		t.Errorf("stmt 2 target = %+v", v)
	}
	if _, ok := s.Body[3].(*AssignStmt).Target.(*IndexExpr); !ok {
		t.Error("stmt 3 should assign to index")
	}
	if s.Body[4].(*AssignStmt).Op != PLUS {
		t.Error("stmt 4 should be +=")
	}
	if !s.Body[5].(*IncDecStmt).Dec {
		t.Error("stmt 5 should be decrement")
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, `r = 1 + 2 * 3 == 7 && !x || y < z;`)
	// ((((1 + (2*3)) == 7) && (!x)) || (y < z))
	root := s.Body[0].(*AssignStmt).Value.(*BinaryExpr)
	if root.Op != OROR {
		t.Fatalf("root op = %v, want ||", root.Op)
	}
	land := root.L.(*BinaryExpr)
	if land.Op != ANDAND {
		t.Fatalf("left op = %v, want &&", land.Op)
	}
	eq := land.L.(*BinaryExpr)
	if eq.Op != EQ {
		t.Fatalf("eq op = %v", eq.Op)
	}
	add := eq.L.(*BinaryExpr)
	if add.Op != PLUS {
		t.Fatalf("add op = %v", add.Op)
	}
	if mul := add.R.(*BinaryExpr); mul.Op != STAR {
		t.Fatalf("mul op = %v", mul.Op)
	}
	if not := land.R.(*UnaryExpr); not.Op != NOT {
		t.Fatalf("not op = %v", not.Op)
	}
	if rel := root.R.(*BinaryExpr); rel.Op != LT {
		t.Fatalf("rel op = %v", rel.Op)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
		if (x > 0) { y = 1; } else if (x < 0) { y = -1; } else y = 0;
		while (y) { y = y - 1; break; continue; }
		for (i = 0; i < 10; i++) total = total + i;
		for (;;) { end; }
	`
	s := mustParse(t, src)
	iff := s.Body[0].(*IfStmt)
	if len(iff.Then) != 1 || len(iff.Else) != 1 {
		t.Errorf("if arms: then=%d else=%d", len(iff.Then), len(iff.Else))
	}
	if _, ok := iff.Else[0].(*IfStmt); !ok {
		t.Error("else-if should nest an IfStmt")
	}
	wh := s.Body[1].(*WhileStmt)
	if len(wh.Body) != 3 {
		t.Errorf("while body = %d stmts", len(wh.Body))
	}
	f := s.Body[2].(*ForStmt)
	if f.Init == nil || f.Cond == nil || f.Post == nil || len(f.Body) != 1 {
		t.Error("for parts missing")
	}
	if _, ok := f.Post.(*IncDecStmt); !ok {
		t.Error("for post should be i++")
	}
	inf := s.Body[3].(*ForStmt)
	if inf.Init != nil || inf.Cond != nil || inf.Post != nil {
		t.Error("for(;;) should have nil parts")
	}
}

func TestParseHopDefaults(t *testing.T) {
	s := mustParse(t, `hop();`)
	nav := s.Body[0].(*NavStmt)
	if nav.Kind != NavHop || nav.All {
		t.Errorf("nav = %+v", nav)
	}
	for f := FieldLN; f < numNavFields; f++ {
		if len(nav.Fields[f]) != 0 {
			t.Errorf("field %d should be empty", f)
		}
	}
}

func TestParseHopPaperForms(t *testing.T) {
	// The three example forms from §2.1 of the paper.
	src := `
		hop(ll = x);
		hop(ll = x; ldir = -);
		hop(ln = *; ll = *; ldir = *);
		hop(ll = $last);
		hop(ln = "init", ll = virtual);
	`
	s := mustParse(t, src)
	h0 := s.Body[0].(*NavStmt)
	if v := h0.Fields[FieldLL][0].(*VarExpr); v.Name != "x" {
		t.Errorf("hop(ll=x): %+v", v)
	}
	h1 := s.Body[1].(*NavStmt)
	if v := h1.Fields[FieldLDir][0].(*StrLit); v.V != "-" {
		t.Errorf("ldir literal = %q", v.V)
	}
	h2 := s.Body[2].(*NavStmt)
	for _, f := range []NavField{FieldLN, FieldLL, FieldLDir} {
		if v := h2.Fields[f][0].(*StrLit); v.V != "*" {
			t.Errorf("wildcard literal = %q", v.V)
		}
	}
	h3 := s.Body[3].(*NavStmt)
	if v := h3.Fields[FieldLL][0].(*VarExpr); v.Space != SpaceNet || v.Name != "last" {
		t.Errorf("$last parse: %+v", v)
	}
	h4 := s.Body[4].(*NavStmt)
	if v := h4.Fields[FieldLL][0].(*StrLit); v.V != VirtualLink {
		t.Errorf("virtual link literal = %q", v.V)
	}
}

func TestParseCreateForms(t *testing.T) {
	src := `
		create(ALL);
		create(ln = "a", "b"; ll = "x", "y");
		create(ln = ~; ll = ~; ldir = ~; dn = *; dl = *; ddir = *; ALL);
	`
	s := mustParse(t, src)
	c0 := s.Body[0].(*NavStmt)
	if !c0.All || c0.Kind != NavCreate {
		t.Errorf("create(ALL): %+v", c0)
	}
	c1 := s.Body[1].(*NavStmt)
	if len(c1.Fields[FieldLN]) != 2 || len(c1.Fields[FieldLL]) != 2 {
		t.Errorf("multi-arm create: ln=%d ll=%d", len(c1.Fields[FieldLN]), len(c1.Fields[FieldLL]))
	}
	c2 := s.Body[2].(*NavStmt)
	if !c2.All {
		t.Error("trailing ALL not parsed")
	}
	if v := c2.Fields[FieldLN][0].(*StrLit); v.V != "~" {
		t.Errorf("unnamed literal = %q", v.V)
	}
	if v := c2.Fields[FieldDN][0].(*StrLit); v.V != "*" {
		t.Errorf("daemon wildcard = %q", v.V)
	}
}

func TestParseDelete(t *testing.T) {
	s := mustParse(t, `delete(ll = "corridor"; ldir = +);`)
	d := s.Body[0].(*NavStmt)
	if d.Kind != NavDelete {
		t.Errorf("kind = %v", d.Kind)
	}
	if v := d.Fields[FieldLDir][0].(*StrLit); v.V != "+" {
		t.Errorf("ldir = %q", v.V)
	}
}

func TestParseFunctions(t *testing.T) {
	src := `
		func add(a, b) { return a + b; }
		func main_helper() { msgr.total = add(1, 2); }
		x = add(3, 4);
	`
	s := mustParse(t, src)
	if len(s.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(s.Funcs))
	}
	if s.Funcs[0].Name != "add" || len(s.Funcs[0].Params) != 2 {
		t.Errorf("func 0 = %+v", s.Funcs[0])
	}
	call := s.Body[0].(*AssignStmt).Value.(*CallExpr)
	if call.Name != "add" || len(call.Args) != 2 {
		t.Errorf("call = %+v", call)
	}
}

func TestParseArraysAndIndexing(t *testing.T) {
	s := mustParse(t, `a = [1, 2.5, "three", [4]]; b = a[3][0];`)
	lit := s.Body[0].(*AssignStmt).Value.(*ArrayLit)
	if len(lit.Elems) != 4 {
		t.Fatalf("array elems = %d", len(lit.Elems))
	}
	idx := s.Body[1].(*AssignStmt).Value.(*IndexExpr)
	if _, ok := idx.Base.(*IndexExpr); !ok {
		t.Error("chained indexing should nest")
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		`x = ;`:                     "unexpected",
		`x = 1`:                     "expected",
		`if x { }`:                  "expected",
		`$last = 1;`:                "read-only",
		`1 = 2;`:                    "cannot assign",
		`f(1) = 2;`:                 "cannot assign",
		`hop(bogus = 1);`:           "unknown hop parameter",
		`hop(ALL);`:                 "ALL is only valid in create",
		`hop(dn = *);`:              "only takes logical parameters",
		`hop(ll = 1; ll = 2);`:      "duplicate",
		`func f(a, a) { }`:          "duplicate parameter",
		`func f() { } func f() { }`: "redeclared",
		`x = 1; func late() { }`:    "before the main body",
		`while (1) { x = 1;`:        "unexpected end of file",
		`x = (1 + 2;`:               "expected",
		`a = [1, 2;`:                "expected",
	}
	for src, want := range bad {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", src)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) error = %q, want substring %q", src, err, want)
		}
	}
}

func TestParsePaperManagerWorkerScript(t *testing.T) {
	// Figure 3 of the paper, in MSL syntax.
	src := `
		create(ALL);
		hop(ll = $last);
		while ((task = next_task()) != nil) {
			hop(ll = $last);
			res = compute(task);
			hop(ll = $last);
			deposit(res);
		}
	`
	s := mustParse(t, src)
	if len(s.Body) != 3 {
		t.Fatalf("body = %d statements", len(s.Body))
	}
	wh := s.Body[2].(*WhileStmt)
	if len(wh.Body) != 4 {
		t.Errorf("while body = %d statements", len(wh.Body))
	}
	cond := wh.Cond.(*BinaryExpr)
	if cond.Op != NE {
		t.Errorf("cond op = %v", cond.Op)
	}
}
