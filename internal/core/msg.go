package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"messengers/internal/bytecode"
	"messengers/internal/logical"
	"messengers/internal/vm"
	"messengers/internal/wire"
)

// MsgKind discriminates daemon-to-daemon messages.
type MsgKind uint8

// Message kinds.
const (
	// MsgMessenger carries a hopping Messenger: program hash + VM snapshot.
	MsgMessenger MsgKind = iota + 1
	// MsgCreate carries a Messenger together with a request to create the
	// logical node it will continue in.
	MsgCreate
	// MsgCreateAck completes the origin's half-link after a remote create.
	MsgCreateAck
	// MsgInject delivers an externally injected Messenger to a daemon.
	MsgInject
	// MsgProgram distributes a compiled script to a daemon's registry (the
	// shared-file-system substitute in distributed deployments).
	MsgProgram
	// MsgGVTNotify tells the coordinator that a daemon has suspended a
	// Messenger on virtual time (so GVT rounds should run).
	MsgGVTNotify
	// MsgGVTQuery asks a daemon for its GVT report.
	MsgGVTQuery
	// MsgGVTReport answers a query with local minimum and message counts.
	MsgGVTReport
	// MsgGVTAdvance broadcasts a new global virtual time.
	MsgGVTAdvance
	// MsgHalt broadcasts that the computation is quiescent.
	MsgHalt
	// MsgHopAck acknowledges receipt of a reliable message (recovery mode);
	// MsgrID and HopSeq identify the acknowledged transfer.
	MsgHopAck
	// MsgHeartbeat is a periodic liveness probe between daemons (recovery
	// mode on real transports; intercepted at the transport layer).
	MsgHeartbeat
	// MsgGVTToken is the distributed ring-reduction GVT token: it circulates
	// the daemon ring accumulating the global minimum and transient counters
	// (pass 1, GPass=1), then again committing the new GVT (pass 2, GPass=2).
	MsgGVTToken
	// MsgBatch carries several same-destination messages coalesced into one
	// frame (hop batching); the receiver unpacks and handles each in order.
	MsgBatch
)

// String names the kind.
func (k MsgKind) String() string {
	names := map[MsgKind]string{
		MsgMessenger: "messenger", MsgCreate: "create", MsgCreateAck: "create-ack",
		MsgInject: "inject", MsgProgram: "program", MsgGVTNotify: "gvt-notify",
		MsgGVTQuery: "gvt-query", MsgGVTReport: "gvt-report",
		MsgGVTAdvance: "gvt-advance", MsgHalt: "halt",
		MsgHopAck: "hop-ack", MsgHeartbeat: "heartbeat",
		MsgGVTToken: "gvt-token", MsgBatch: "batch",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// Msg is one daemon-to-daemon message. A single struct covers all kinds;
// unused fields stay zero. It has a deterministic binary encoding for the
// TCP transport and for wire-size accounting in the simulator.
type Msg struct {
	Kind MsgKind
	From int

	// Messenger payload (MsgMessenger, MsgCreate, MsgInject).
	ProgHash bytecode.Hash
	Snapshot []byte
	// XferVM, when non-nil, carries the hopping Messenger's VM by ownership
	// transfer instead of Snapshot: in-process engines deliver the pointer
	// as-is (zero-copy — the paper's Messenger-variable-area transfer), and
	// the TCP transport serializes it lazily, straight into the pooled
	// frame. At most one of XferVM and Snapshot is set. The sender must not
	// touch the VM after handing the message to the engine; the receiver
	// consumes it (or the decoded Snapshot) exactly once.
	XferVM *vm.VM
	// snapSize caches XferVM.SnapshotSize (the VM is frozen in transit, so
	// the size cannot change between send and delivery).
	snapSize int
	MsgrID   uint64
	LVT      float64
	// DestNode is the target logical node (MsgMessenger).
	DestNode logical.NodeID
	// Last is the link name to expose as $last at the destination.
	Last string
	// RemoveLink, when nonzero, is the half-link to delete at the
	// destination node before the Messenger runs (delete traversal).
	RemoveLink logical.LinkID

	// Create request (MsgCreate).
	CreateName string
	LinkID     logical.LinkID
	LinkName   string
	LinkDir    uint8 // 0 undirected, 1 origin->new, 2 new->origin
	Origin     logical.Addr
	OriginName string

	// Create ack (MsgCreateAck): LinkID above plus the new node.
	AckPeer     logical.Addr
	AckPeerName string

	// Program distribution (MsgProgram).
	ProgBytes []byte

	// GVT fields (MsgGVT*).
	GEpoch  int64
	GMin    float64
	GSent   int64
	GRecv   int64
	GActive int64
	GVT     float64
	// GPass is the ring-token pass number (MsgGVTToken): 1 accumulates,
	// 2 commits.
	GPass uint8

	// Batch holds the coalesced sub-messages of a MsgBatch. Sub-messages
	// never nest (a batch member is always a leaf kind).
	Batch []*Msg

	// HopSeq is the sender's per-daemon reliable-transfer sequence number
	// (recovery mode; zero otherwise). Together with From it keys duplicate
	// suppression and MsgHopAck matching.
	HopSeq uint64

	// Tenant and Session tag a Messenger admitted through a multi-tenant
	// admission gate (internal/serve); they follow the Messenger through
	// every hop, create, and recovery respawn so quota charging survives
	// migration. Empty/zero outside service mode.
	Tenant  string
	Session uint64
	// Budget is the session's instruction-step budget, carried on the
	// injection frame so a remote admission front end can communicate the
	// grant; daemons account against the gate, not this field.
	Budget int64
	// AckFloor piggybacks the sender's reliable-delivery floor: every
	// HopSeq at or below it has been released (acknowledged and processed),
	// so the receiver can evict its dedup entries up to the floor. Keeps
	// the duplicate-suppression map bounded in long-running service mode.
	AckFloor uint64
}

// CarriesMessenger reports whether this message transfers computation (and
// therefore participates in GVT transient counting).
func (m *Msg) CarriesMessenger() bool {
	return m.Kind == MsgMessenger || m.Kind == MsgCreate || m.Kind == MsgInject
}

// SnapshotLen is the length in bytes of the Messenger state this message
// carries: the materialized snapshot, or the exact encoded size of the VM
// travelling by ownership transfer (computed without serializing it).
func (m *Msg) SnapshotLen() int {
	if m.XferVM != nil {
		if m.snapSize == 0 {
			m.snapSize = m.XferVM.SnapshotSize()
		}
		return m.snapSize
	}
	return len(m.Snapshot)
}

// EncodedSize is the exact length of the Encode output, implementing
// wire.Sizer. The previous 64+len(Snapshot)+len(ProgBytes) heuristic
// undercounted the variable-length header fields, forcing a mid-encode
// regrow (and full copy) on every large hop.
func (m *Msg) EncodedSize() int {
	return 1 + 4 + len(m.ProgHash) + // Kind, From, ProgHash
		4 + m.SnapshotLen() + // snapshot blob
		8 + 8 + 8 + // MsgrID, LVT, DestNode
		4 + len(m.Last) + 12 + // Last, RemoveLink
		4 + len(m.CreateName) + 12 + 4 + len(m.LinkName) + 1 + // create request
		12 + 4 + len(m.OriginName) + // Origin
		12 + 4 + len(m.AckPeerName) + // AckPeer
		4 + len(m.ProgBytes) + // program blob
		6*8 + 1 + // GVT fields, GPass
		8 + // HopSeq
		4 + len(m.Tenant) + 8 + 8 + 8 + // Tenant, Session, Budget, AckFloor
		m.batchSize()
}

// batchSize is the encoded length of the batch tail: a count plus one
// length-prefixed sub-encoding per member.
func (m *Msg) batchSize() int {
	n := 4
	for _, sub := range m.Batch {
		n += 4 + sub.EncodedSize()
	}
	return n
}

// AppendTo serializes the message into e in one pass. A Messenger carried
// by XferVM is encoded directly into the frame through a reserved length
// slot — no intermediate snapshot slice is ever built.
func (m *Msg) AppendTo(e *wire.Encoder) {
	e.U8(byte(m.Kind))
	e.U32(uint32(m.From))
	e.Raw(m.ProgHash[:])
	if m.XferVM != nil {
		off := e.Reserve(4)
		start := e.Len()
		m.XferVM.AppendSnapshot(e)
		n := e.Len() - start
		if n > wire.MaxLen {
			e.Fail(fmt.Errorf("core: snapshot of %d bytes exceeds limit (%d)", n, wire.MaxLen))
			return
		}
		e.PatchU32(off, uint32(n))
	} else {
		e.Blob(m.Snapshot)
	}
	e.U64(m.MsgrID)
	e.F64(m.LVT)
	e.U64(uint64(m.DestNode))
	e.Str(m.Last)
	appendLinkIDTo(e, m.RemoveLink)
	e.Str(m.CreateName)
	appendLinkIDTo(e, m.LinkID)
	e.Str(m.LinkName)
	e.U8(m.LinkDir)
	appendAddrTo(e, m.Origin)
	e.Str(m.OriginName)
	appendAddrTo(e, m.AckPeer)
	e.Str(m.AckPeerName)
	e.Blob(m.ProgBytes)
	e.U64(uint64(m.GEpoch))
	e.F64(m.GMin)
	e.U64(uint64(m.GSent))
	e.U64(uint64(m.GRecv))
	e.U64(uint64(m.GActive))
	e.F64(m.GVT)
	e.U8(m.GPass)
	e.U64(m.HopSeq)
	e.Str(m.Tenant)
	e.U64(m.Session)
	e.U64(uint64(m.Budget))
	e.U64(m.AckFloor)
	e.U32(uint32(len(m.Batch)))
	for _, sub := range m.Batch {
		off := e.Reserve(4)
		start := e.Len()
		sub.AppendTo(e)
		n := e.Len() - start
		if n > wire.MaxLen {
			e.Fail(fmt.Errorf("core: batched message of %d bytes exceeds limit (%d)", n, wire.MaxLen))
			return
		}
		e.PatchU32(off, uint32(n))
	}
}

// Encode serializes the message into a standalone slice, allocated at its
// exact encoded size. The TCP transport uses EncodeFrame (pooled, framed)
// instead.
func (m *Msg) Encode() []byte {
	e := wire.AppendingTo(make([]byte, 0, m.EncodedSize()))
	m.AppendTo(e)
	if err := e.Err(); err != nil {
		// Production paths frame through EncodeFrame and handle the sticky
		// error; Encode is the test/tooling spelling, where shipping
		// truncated bytes silently would corrupt goldens — be loud instead.
		panic(fmt.Sprintf("core: Msg.Encode: %v", err))
	}
	return e.Bytes()
}

// EncodeFrame serializes the message as one transport frame — header and
// payload in a single buffer — into e (typically a pooled encoder). It
// returns the encoder's sticky error, if any.
func (m *Msg) EncodeFrame(e *wire.Encoder) error {
	off := e.BeginFrame()
	m.AppendTo(e)
	return e.EndFrame(off)
}

// WireSize is the size charged on the simulated network. Control messages
// are charged a small fixed size rather than their padded struct encoding.
func (m *Msg) WireSize() int {
	switch m.Kind {
	case MsgMessenger, MsgCreate, MsgInject:
		return 48 + m.SnapshotLen() + len(m.Last) + len(m.CreateName) + len(m.LinkName) + len(m.ProgBytes) + len(m.Tenant)
	case MsgProgram:
		return 32 + len(m.ProgBytes)
	case MsgBatch:
		// One frame header amortized over the members; each member still
		// pays its own payload bytes.
		n := 16
		for _, sub := range m.Batch {
			n += sub.WireSize()
		}
		return n
	default:
		return 64
	}
}

// DecodeMsg deserializes a message produced by Encode. The returned Msg
// aliases buf — Snapshot and ProgBytes are subslices of it — so the caller
// must keep buf untouched (and must not recycle it into a pool) for as long
// as the message or state decoded from it is live. Consumers that retain
// data past that point (value.Decode, bytecode decoding) copy what they
// keep.
func DecodeMsg(buf []byte) (*Msg, error) {
	return decodeMsg(buf, 0)
}

func decodeMsg(buf []byte, depth int) (*Msg, error) {
	r := &msgReader{buf: buf}
	m := &Msg{}
	m.Kind = MsgKind(r.u8())
	m.From = int(r.u32())
	r.read(m.ProgHash[:])
	m.Snapshot = r.bytes()
	m.MsgrID = r.u64()
	m.LVT = math.Float64frombits(r.u64())
	m.DestNode = logical.NodeID(r.u64())
	m.Last = r.str()
	m.RemoveLink = r.linkID()
	m.CreateName = r.str()
	m.LinkID = r.linkID()
	m.LinkName = r.str()
	m.LinkDir = r.u8()
	m.Origin = r.addr()
	m.OriginName = r.str()
	m.AckPeer = r.addr()
	m.AckPeerName = r.str()
	m.ProgBytes = r.bytes()
	m.GEpoch = int64(r.u64())
	m.GMin = math.Float64frombits(r.u64())
	m.GSent = int64(r.u64())
	m.GRecv = int64(r.u64())
	m.GActive = int64(r.u64())
	m.GVT = math.Float64frombits(r.u64())
	m.GPass = r.u8()
	m.HopSeq = r.u64()
	m.Tenant = r.str()
	m.Session = r.u64()
	m.Budget = int64(r.u64())
	m.AckFloor = r.u64()
	if n := int(r.u32()); n > 0 && r.err == nil {
		// Untrusted input: members are never nested, and each needs at
		// least its 4-byte length prefix, which bounds a plausible count.
		if depth > 0 || n > (len(buf)-r.pos)/4 {
			return nil, fmt.Errorf("core: decode batch: implausible batch (depth %d, count %d, %d bytes left)", depth, n, len(buf)-r.pos)
		}
		m.Batch = make([]*Msg, 0, n)
		for i := 0; i < n; i++ {
			sub := r.bytes()
			if r.err != nil {
				break
			}
			sm, err := decodeMsg(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("core: decode batch member %d: %w", i, err)
			}
			m.Batch = append(m.Batch, sm)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("core: decode %v message: %w", m.Kind, r.err)
	}
	return m, nil
}

func appendLinkIDTo(e *wire.Encoder, id logical.LinkID) {
	e.U32(uint32(id.Daemon))
	e.U64(id.Seq)
}

func appendAddrTo(e *wire.Encoder, a logical.Addr) {
	e.U32(uint32(a.Daemon))
	e.U64(uint64(a.Node))
}

type msgReader struct {
	buf []byte
	pos int
	err error
}

func (r *msgReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated at byte %d", r.pos)
	}
}

func (r *msgReader) u8() uint8 {
	if r.pos+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *msgReader) u32() uint32 {
	if r.pos+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *msgReader) u64() uint64 {
	if r.pos+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *msgReader) read(dst []byte) {
	if r.pos+len(dst) > len(r.buf) {
		r.fail()
		return
	}
	copy(dst, r.buf[r.pos:])
	r.pos += len(dst)
}

func (r *msgReader) str() string {
	n := int(r.u32())
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *msgReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	// Alias the frame instead of copying: decode consumers copy whatever
	// they retain, and the frame buffer stays live per the DecodeMsg
	// contract. The capped subslice keeps appends from clobbering the rest
	// of the frame.
	b := r.buf[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return b
}

func (r *msgReader) linkID() logical.LinkID {
	return logical.LinkID{Daemon: int(r.u32()), Seq: r.u64()}
}

func (r *msgReader) addr() logical.Addr {
	return logical.Addr{Daemon: int(r.u32()), Node: logical.NodeID(r.u64())}
}
