package core

import (
	"fmt"
	"testing"

	"messengers/internal/value"
)

// TestFloodingShortestPaths runs a classic navigational-paradigm algorithm
// in pure MSL: a wave of Messengers floods an irregular logical network,
// each carrying its path length and relaxing node.dist at every node it
// improves — BFS with no message passing, no queues, and no termination
// protocol beyond "a Messenger that cannot improve anything dies".
func TestFloodingShortestPaths(t *testing.T) {
	k, sys := simSystem(t, 4)

	//      a --- b --- c
	//      |           |
	//      d --- e --- f --- g        (h isolated from the wave's source)
	edges := [][2]string{
		{"a", "b"}, {"b", "c"}, {"a", "d"}, {"d", "e"}, {"e", "f"}, {"c", "f"}, {"f", "g"},
	}
	spec := NetSpec{}
	nodes := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, n := range nodes {
		spec.Nodes = append(spec.Nodes, NetNode{Name: n, Daemon: i % 4})
	}
	for _, e := range edges {
		spec.Links = append(spec.Links, NetLink{A: e[0], B: e[1], Name: "edge"})
	}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}

	register(t, sys, "flood", `
		for (;;) {
			if (node.dist != nil && node.dist <= d) { end; }
			node.dist = d;
			d = d + 1;
			hop(ll = "edge");
		}
	`)
	err := sys.InjectAt(0, "flood", "a", map[string]value.Value{"d": value.Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)

	want := map[string]int64{"a": 0, "b": 1, "c": 2, "d": 1, "e": 2, "f": 3, "g": 4}
	for i, n := range nodes {
		vars, ok := sys.ReadNodeVars(i%4, n)
		if !ok {
			t.Fatalf("node %s missing", n)
		}
		if wd, reachable := want[n]; reachable {
			if got := vars["dist"]; got.AsInt() != wd {
				t.Errorf("dist(%s) = %v, want %d", n, got, wd)
			}
		} else if !vars["dist"].IsNil() {
			t.Errorf("unreachable node %s got dist %v", n, vars["dist"])
		}
	}
}

// TestEchoWaveLeaderElection elects a maximum-ID leader by flooding: every
// node starts a candidate Messenger carrying its ID; candidates die at any
// node that has already seen a larger ID. Exactly one ID saturates the
// network.
func TestEchoWaveLeaderElection(t *testing.T) {
	const n = 6
	k, sys := simSystem(t, 3)
	spec := NetSpec{}
	for i := 0; i < n; i++ {
		spec.Nodes = append(spec.Nodes, NetNode{Name: fmt.Sprintf("p%d", i), Daemon: i % 3})
		spec.Links = append(spec.Links, NetLink{
			A: fmt.Sprintf("p%d", i), B: fmt.Sprintf("p%d", (i+1)%n), Name: "edge",
		})
	}
	// A chord to make it non-trivial.
	spec.Links = append(spec.Links, NetLink{A: "p0", B: "p3", Name: "edge"})
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}

	register(t, sys, "candidate", `
		for (;;) {
			if (node.leader != nil && node.leader >= id) { end; }
			node.leader = id;
			hop(ll = "edge");
		}
	`)
	ids := []int64{17, 3, 99, 25, 8, 41}
	for i, id := range ids {
		err := sys.InjectAt(i%3, "candidate", fmt.Sprintf("p%d", i),
			map[string]value.Value{"id": value.Int(id)})
		if err != nil {
			t.Fatal(err)
		}
	}
	runSim(t, k, sys)
	for i := 0; i < n; i++ {
		vars, _ := sys.ReadNodeVars(i%3, fmt.Sprintf("p%d", i))
		if got := vars["leader"].AsInt(); got != 99 {
			t.Errorf("p%d elected %d, want 99", i, got)
		}
	}
}

// TestMultiArmHop exercises a single hop statement with several
// destination specifications (the paper's footnote 2).
func TestMultiArmHop(t *testing.T) {
	k, sys := simSystem(t, 2)
	spec := NetSpec{
		Nodes: []NetNode{
			{Name: "hub", Daemon: 0}, {Name: "left", Daemon: 0},
			{Name: "right", Daemon: 1}, {Name: "up", Daemon: 1},
		},
		Links: []NetLink{
			{A: "hub", B: "left", Name: "x"},
			{A: "hub", B: "right", Name: "y"},
			{A: "hub", B: "up", Name: "z"},
		},
	}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}
	register(t, sys, "split", `
		hop(ll = "x", "y");   // two arms, one statement
		node.mark = 1;
	`)
	if err := sys.InjectAt(0, "split", "hub", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	for _, probe := range []struct {
		daemon int
		node   string
		want   int64
	}{{0, "left", 1}, {1, "right", 1}, {1, "up", 0}} {
		vars, _ := sys.ReadNodeVars(probe.daemon, probe.node)
		if got := vars["mark"].AsInt(); got != probe.want {
			t.Errorf("%s mark = %d, want %d", probe.node, got, probe.want)
		}
	}
}

// TestCreateOnSpecificDaemon pins create's daemon destination spec.
func TestCreateOnSpecificDaemon(t *testing.T) {
	k, sys := simSystem(t, 4)
	register(t, sys, "placer", `
		create(ln = "outpost"; ll = "road"; dn = "d2");
		node.built_on = $daemon;
	`)
	if err := sys.Inject(0, "placer", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	vars, ok := sys.ReadNodeVars(2, "outpost")
	if !ok {
		t.Fatal("outpost not on daemon 2")
	}
	if vars["built_on"].AsInt() != 2 {
		t.Errorf("built_on = %v", vars["built_on"])
	}
}

// TestCreateChainAcrossDaemons builds a path node-by-node with directed
// links and walks it back (the ack/pending-link path for remote creates).
func TestCreateChainAcrossDaemons(t *testing.T) {
	k, sys := simSystem(t, 4)
	register(t, sys, "chain", `
		for (i = 1; i < $ndaemons; i++) {
			create(ln = "c" + i; ll = "path"; ldir = +; dn = i);
		}
		node.tail = 1;
		// Walk all the way back against the link direction.
		for (i = 1; i < $ndaemons; i++) {
			hop(ll = "path", ldir = -);
		}
		node.home = $node;
	`)
	if err := sys.Inject(0, "chain", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	vars, ok := sys.ReadNodeVars(3, "c3")
	if !ok || vars["tail"].AsInt() != 1 {
		t.Errorf("tail missing: %v (ok=%v)", vars, ok)
	}
	init := sys.Daemon(0).Store().Init()
	if init.Vars["home"].AsStr() != "init" {
		t.Errorf("home = %v", init.Vars["home"])
	}
}

// TestHopForwardOverPendingLink drives the one ordering the create-ack
// protocol must guarantee: hop out over a link whose remote create was
// just issued (FIFO delivery means the ack resolves the half-link before
// any Messenger can traverse it from the origin side).
func TestHopForwardOverPendingLink(t *testing.T) {
	k, sys := simSystem(t, 2)
	register(t, sys, "builder", `
		create(ln = "far"; ll = "bridge"; dn = 1);
		hop(ll = "bridge");       // back to init on d0
		inject("crosser");
	`)
	register(t, sys, "crosser", `
		hop(ll = "bridge");       // out over the completed half-link
		node.crossed = node.crossed + 1;
	`)
	if err := sys.Inject(0, "builder", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	vars, ok := sys.ReadNodeVars(1, "far")
	if !ok || vars["crossed"].AsInt() != 1 {
		t.Errorf("crossed = %v (ok=%v)", vars, ok)
	}
}
