package protocols

import (
	"testing"

	"messengers/internal/obs"
)

// Clean-run (no nemesis) smoke tests for the three Messenger protocol
// implementations on the sim engine: each must reach its decision and the
// matching checker must report zero violations.

func TestPaxosMessengersClean(t *testing.T) {
	m := obs.NewMetrics()
	rec := NewRecorder(m)
	if err := runPaxosMessengers(EngineSim, nil, rec, m, false); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	decided := false
	for _, e := range evs {
		if e.Kind == EvDecide {
			decided = true
		}
	}
	if !decided {
		t.Fatalf("no decision reached; events: %+v", evs)
	}
	if vs := (PaxosChecker{}).Check(evs); len(vs) != 0 {
		t.Fatalf("violations on clean run: %+v", vs)
	}
}

func TestTPCMessengersClean(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4} {
		m := obs.NewMetrics()
		rec := NewRecorder(m)
		if err := runTPCMessengers(EngineSim, seed, nil, rec, m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		evs := rec.Events()
		decided := false
		for _, e := range evs {
			if e.Kind == EvDecide {
				decided = true
			}
		}
		if !decided {
			t.Fatalf("seed %d: no decision; events: %+v", seed, evs)
		}
		if vs := (TPCChecker{Participants: tpcParticipants}).Check(evs); len(vs) != 0 {
			t.Fatalf("seed %d: violations on clean run: %+v", seed, vs)
		}
	}
}

func TestTermMessengersClean(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		m := obs.NewMetrics()
		rec := NewRecorder(m)
		if err := runTermMessengers(EngineSim, seed, nil, rec, m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		evs := rec.Events()
		detected := false
		for _, e := range evs {
			if e.Kind == EvDetect {
				detected = true
			}
		}
		if !detected {
			t.Fatalf("seed %d: no termination detected; events: %+v", seed, evs)
		}
		if vs := (TermChecker{}).Check(evs); len(vs) != 0 {
			t.Fatalf("seed %d: violations on clean run: %+v", seed, vs)
		}
	}
}
