package vm

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"messengers/internal/bytecode"
	"messengers/internal/compile"
	"messengers/internal/value"
)

// The switch loop is the semantic oracle; these tests pin the threaded and
// fused engines to it observation-for-observation. A "trace" renders every
// externally visible effect of running a program to completion — per-segment
// pause reasons, step counts, nav arms, snapshot bytes, final variables,
// host output, step-meter charges, and per-opcode profile counts — into one
// string, and the engines must produce identical strings.

// diffModes are the pinned dispatch engines under differential test.
var diffModes = []Dispatch{DispatchSwitch, DispatchThreaded, DispatchFused, DispatchSpecialized}

func sortedEnv(env map[string]value.Value) string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, env[k])
	}
	return b.String()
}

// dispatchTrace runs prog from scratch under one engine and renders the
// complete observable behavior. budget > 0 attaches a step meter with that
// allowance, exercising the threaded loop's refuse-and-tail path when a
// superinstruction would overrun it.
func dispatchTrace(prog *bytecode.Program, mode Dispatch, budget int64) string {
	m := New(prog, nil)
	m.SetDispatch(mode)
	prof := &Profile{}
	m.SetProfile(prof)
	var meter *meterRec
	if budget > 0 {
		meter = &meterRec{allowance: budget}
		m.SetMeter(meter)
	}
	h := newTestHost()
	var b strings.Builder
	for seg := 0; seg < 64; seg++ {
		res, err := m.Run(h, 4096)
		if err != nil {
			fmt.Fprintf(&b, "err=%v\n", err)
			break
		}
		fmt.Fprintf(&b, "pause=%v steps=%d all=%v native=%q time=%v arms=%v args=%v\n",
			res.Pause, res.Steps, res.All, res.Native, res.Time, res.Arms, res.Args)
		switch res.Pause {
		case PauseHop, PauseCreate, PauseDelete:
			// The serialized form a daemon would put on the wire must be
			// byte-identical regardless of which engine paused the VM.
			snap, serr := m.Snapshot()
			if serr != nil {
				fmt.Fprintf(&b, "snapshot-err=%v\n", serr)
			} else {
				fmt.Fprintf(&b, "snapshot=%x\n", snap)
				if _, rerr := Restore(prog, snap); rerr != nil {
					fmt.Fprintf(&b, "restore-err=%v\n", rerr)
				}
			}
		case PauseNative:
			// Deterministic stand-in for the daemon's native dispatch.
			m.PushResult(value.Int(int64(len(res.Native))))
		case PauseEnd:
			seg = 64 // terminate
		}
		if res.Pause == PauseEnd {
			break
		}
	}
	fmt.Fprintf(&b, "vars=%s\n", sortedEnv(m.Vars()))
	fmt.Fprintf(&b, "node=%s output=%q\n", sortedEnv(h.node), h.output)
	if meter != nil {
		fmt.Fprintf(&b, "charged=%d left=%d\n", meter.charged, meter.Allowance())
	}
	// The step meter and profile count SOURCE instructions: a fused
	// superinstruction charges each of its constituents, so these arrays
	// must match the switch loop's exactly.
	for op := 0; op < NumOps; op++ {
		if prof.Counts[op] != 0 {
			fmt.Fprintf(&b, "op[%s]=%d\n", OpName(op), prof.Counts[op])
		}
	}
	return b.String()
}

// assertDispatchAgree fails the test unless threaded and fused dispatch
// reproduce the switch loop's trace exactly.
func assertDispatchAgree(t *testing.T, prog *bytecode.Program, budget int64) {
	t.Helper()
	oracle := dispatchTrace(prog, DispatchSwitch, budget)
	for _, mode := range diffModes[1:] {
		if got := dispatchTrace(prog, mode, budget); got != oracle {
			t.Errorf("dispatch %v diverges from switch (budget=%d):\n--- switch ---\n%s--- %v ---\n%s",
				mode, budget, oracle, mode, got)
		}
	}
}

// diffPrograms is the deterministic differential corpus: each entry leans
// on a specific engine fast path or superinstruction family, plus the
// faults that force mid-superinstruction bailout.
var diffPrograms = []struct {
	name string
	src  string
}{
	// Quad idioms: mvar counting loop (mc<jz + m+c>m), local-variable
	// loop in a function (lc<jz + l+c>l), and mvar-mvar compare (mm<jz).
	{"loop_mvar", `for (i = 0; i < 10; i++) { s = s + i; }`},
	{"loop_local", `func f(n) { t = 0; for (k = 0; k < n; k++) { t = t + 2; } return t; }
		r = f(9);`},
	{"loop_mm", `lim = 5; for (i = 0; i < lim; i++) { s = s + 1; }`},
	// Float promotion inside the fast paths.
	{"loop_float", `x = 0.5; for (i = 0; i < 4; i++) { x = x * 1.5 + i; }`},
	// Faults inside fused sequences: div/mod by zero must abort at the
	// same source pc with the same charge under every engine.
	{"div_zero", `i = 5; z = 0; for (k = 0; k < 3; k++) { i = i / z; }`},
	{"mod_zero_local", `func g() { a = 1; b = 0; for (k = 0; k < 2; k++) { a = a % b; } return a; }
		x = g();`},
	// Type fault in a compare quad: string < int errors mid-quad.
	// The string reaches the compare through an array index (⊤ to the
	// kind verifier), so the program still compiles and faults at runtime.
	{"cmp_fault", `s = ["abc"][0]; for (i = s; i < 3; i++) { x = 1; }`},
	// Nil coercion and string concat take the slow arith path.
	{"nil_coerce", `for (i = 0; i < 3; i++) { u = u + 1; v = v + "x"; }`},
	// Pauses inside loops: hop, sched, native, node/net variables.
	{"hop_loop", `for (i = 0; i < 3; i++) { hop(ll = $last); }`},
	{"sched_loop", `for (i = 0; i < 2; i++) { sched_dlt(1.5); }`},
	{"node_vars", `for (i = 0; i < 3; i++) { node.c = node.c + 1; } print("c " + node.c);`},
	// Aggregates: matrix and array builtins between fused regions.
	{"matrix", `m = matrix(3, 3); for (i = 0; i < 3; i++) { matset(m, i, i, i * 2); }
		t = 0; for (i = 0; i < 3; i++) { t = t + matget(m, i, i); }`},
	// Deep calls: frame flatten/unflatten across engines.
	{"recursion", `func rec(n) { if (n < 1) { return 0; } return n + rec(n - 1); }
		total = rec(20);`},
	// Equality superinstructions and unary ops.
	{"eq_chain", `a = 1; b = 1.0; c = "s";
		for (i = 0; i < 4; i++) { if (a == b) { x = x + 1; } if (c != "t") { y = y + 1; } }
		n = -a; z = !c;`},
}

// TestDispatchDifferential runs the corpus under every engine at several
// meter budgets. Budget 7 lands mid-loop so superinstructions must refuse
// and tail into the switch loop; 0 means unmetered.
func TestDispatchDifferential(t *testing.T) {
	for _, tc := range diffPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := compile.Compile(tc.name, tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, budget := range []int64{0, 7, 23, 4096} {
				assertDispatchAgree(t, prog, budget)
			}
		})
	}
}

// TestDispatchDifferentialResumeFromSnapshot restores a hop-paused snapshot
// and finishes it under each engine: restored state must behave like the
// original regardless of which engine produced or consumes it.
func TestDispatchDifferentialResumeFromSnapshot(t *testing.T) {
	prog, err := compile.Compile("resume", `
		for (i = 0; i < 4; i++) { acc = acc + i * i; hop(ll = $last); }
		done = acc;`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Pause once under the fused engine, snapshot, then finish the
	// restored VM under each engine and compare final variables.
	m := New(prog, nil)
	m.SetDispatch(DispatchFused)
	h := newTestHost()
	res, err := m.Run(h, 4096)
	if err != nil || res.Pause != PauseHop {
		t.Fatalf("first segment: res=%+v err=%v", res, err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var want string
	for _, mode := range diffModes {
		r, err := Restore(prog, snap)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		r.SetDispatch(mode)
		for seg := 0; seg < 16; seg++ {
			res, err := r.Run(h, 4096)
			if err != nil {
				t.Fatalf("%v: run: %v", mode, err)
			}
			if res.Pause == PauseEnd {
				break
			}
		}
		got := sortedEnv(r.Vars())
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("%v: restored run ended with %q, switch oracle %q", mode, got, want)
		}
		if r.Var("done").AsInt() != 0+1+4+9 {
			t.Errorf("%v: done=%v", mode, r.Var("done"))
		}
	}
}
