package faults

// Target is the recovery-capable system the scheduler drives. Both the
// messengers facade System and core.System satisfy it.
type Target interface {
	NumDaemons() int
	// Crash kills daemon d: it stops processing and loses all in-memory
	// state, as a daemon process dying would.
	Crash(d int)
	// Restart revives a crashed daemon as a fresh, empty daemon.
	Restart(d int)
	// NotifyPeerDown tells observer that dead has been detected as failed.
	NotifyPeerDown(observer, dead int)
	// NotifyPeerUp tells observer that a previously dead daemon is back.
	NotifyPeerUp(observer, dead int)
}

// Schedule arms the plan's crashes and restarts on a timer source. The
// `at` callback must run fn at the given absolute time in nanoseconds from
// run start (simulated kernel time or wall time, matching the engine).
//
// With notify set, explicit failure/recovery notices are also scheduled,
// DetectDelay after each event — the deterministic substitute for a failure
// detector on the simulated engine. Real transports should pass false and
// let heartbeat monitoring detect deaths instead.
func Schedule(p *Plan, t Target, at func(atNs int64, fn func()), notify bool) {
	detect := p.detectDelay()
	n := t.NumDaemons()
	for _, c := range p.Crashes {
		c := c
		at(c.At, func() { t.Crash(c.Daemon) })
		if notify {
			for o := 0; o < n; o++ {
				if o == c.Daemon {
					continue
				}
				o := o
				at(c.At+detect, func() { t.NotifyPeerDown(o, c.Daemon) })
			}
		}
		if c.RestartAfter <= 0 {
			continue
		}
		restartAt := c.At + c.RestartAfter
		at(restartAt, func() { t.Restart(c.Daemon) })
		if notify {
			for o := 0; o < n; o++ {
				if o == c.Daemon {
					continue
				}
				o := o
				at(restartAt+detect, func() { t.NotifyPeerUp(o, c.Daemon) })
			}
		}
	}
}
