// Package analyzers holds this repository's lint checks, built on
// internal/analysis. Each analyzer documents the invariant it defends and
// the suppression category that silences it ("//lint:<category>").
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"messengers/internal/analysis"
)

// deterministicPkgs are the packages whose behavior must be a pure
// function of their inputs: everything the simulation engine executes, and
// everything the T1/T2 figures depend on being replayable seed-for-seed.
// internal/core is included because both engines share it — real-engine
// wall-clock use inside it must be explicitly annotated at each site.
// internal/transport is deliberately absent: the TCP engine is allowed to
// look at real clocks.
var deterministicPkgs = map[string]bool{
	"messengers/internal/sim":    true,
	"messengers/internal/lan":    true,
	"messengers/internal/gvt":    true,
	"messengers/internal/core":   true,
	"messengers/internal/vm":     true,
	"messengers/internal/value":  true,
	"messengers/internal/wire":   true,
	"messengers/internal/faults": true,
}

// wallclockFuncs are the time-package functions that read or schedule off
// the real clock. time.Duration arithmetic and constants stay legal.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true, "Sleep": true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions backed
// by the shared global source. Explicit rand.New(rand.NewSource(seed))
// streams are the sanctioned route.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
	// v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
	"N": true,
}

// SimDeterminism reports wall-clock reads, global math/rand use, and
// map-order-dependent iteration inside the deterministic packages.
//
// The paper's evaluation (and this repo's figures) rely on the simulation
// engine being bit-reproducible from a seed; Go gives none of that for
// free. Suppress with //lint:wallclock, //lint:rand, or //lint:maporder
// plus a justification — e.g. the real engine's timer plumbing in
// internal/core, or a map range that feeds a sort.
var SimDeterminism = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock, global rand, and map-order dependence in deterministic packages",
	Run:  runSimDeterminism,
}

func runSimDeterminism(pass *analysis.Pass) error {
	if !deterministicPkgs[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := pass.ObjectOf(n.Sel)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if wallclockFuncs[obj.Name()] {
						pass.Reportf(n.Pos(), "wallclock",
							"time.%s reads the wall clock in deterministic package %s", obj.Name(), shortPkg(pass.PkgPath))
					}
				case "math/rand", "math/rand/v2":
					if globalRandFuncs[obj.Name()] && isPackageRef(pass, n.X) {
						pass.Reportf(n.Pos(), "rand",
							"global %s.%s is unseeded shared state in deterministic package %s",
							shortPkg(obj.Pkg().Path()), obj.Name(), shortPkg(pass.PkgPath))
					}
				}
			case *ast.RangeStmt:
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "maporder",
						"map iteration order is nondeterministic in package %s", shortPkg(pass.PkgPath))
				}
			}
			return true
		})
	}
	return nil
}

// isPackageRef reports whether e is a reference to a package (rand.Intn)
// rather than a value (r.Intn on a *rand.Rand).
func isPackageRef(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := pass.ObjectOf(id).(*types.PkgName)
	return isPkg
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
