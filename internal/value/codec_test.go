package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValue builds a random value of bounded depth for property tests.
func genValue(r *rand.Rand, depth int) Value {
	max := 6
	if depth <= 0 {
		max = 4 // leaf kinds only
	}
	switch r.Intn(max) {
	case 0:
		return Nil()
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Num(r.NormFloat64())
	case 3:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		if r.Intn(2) == 0 {
			return Str(string(b))
		}
		return Bytes(b)
	case 4:
		a := make([]Value, r.Intn(5))
		for i := range a {
			a[i] = genValue(r, depth-1)
		}
		return Arr(a)
	default:
		rows, cols := r.Intn(4), r.Intn(4)
		m := NewMat(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		return Matrix(m)
	}
}

// arbitraryValue adapts genValue to testing/quick.
type arbitraryValue struct{ V Value }

// Generate implements quick.Generator.
func (arbitraryValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(arbitraryValue{V: genValue(r, 3)})
}

func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	f := func(av arbitraryValue) bool {
		enc, err := Append(nil, av.V)
		if err != nil {
			return false
		}
		dec, n, err := Decode(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return dec.Equal(av.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropCloneEqualAndIndependent(t *testing.T) {
	f := func(av arbitraryValue) bool {
		return av.V.Clone().Equal(av.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropWireSizeIsExact(t *testing.T) {
	f := func(av arbitraryValue) bool {
		enc, err := Append(nil, av.V)
		return err == nil && av.V.WireSize() == len(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindInt)},                     // short int
		{byte(KindNum), 1, 2},               // short num
		{byte(KindStr)},                     // missing length
		{byte(KindStr), 255, 255, 255, 255}, // absurd length
		{byte(KindBytes), 10, 0, 0, 0, 1},   // truncated payload
		{byte(KindArr)},                     // missing count
		{byte(KindArr), 2, 0, 0, 0, byte(KindInt)}, // truncated element
		{byte(KindMat), 1, 0, 0, 0},                // short dims
		{byte(KindMat), 2, 0, 0, 0, 2, 0, 0, 0},    // missing data
		// r*c overflows int64 to a small positive number; each dimension
		// must be bounded before the product is trusted (found by fuzzing).
		{byte(KindMat), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		{200}, // unknown tag
	}
	for i, c := range cases {
		if _, _, err := Decode(c); err == nil {
			t.Errorf("case %d: Decode(%v) should fail", i, c)
		}
	}
}

func TestEnvRoundTrip(t *testing.T) {
	env := map[string]Value{
		"x":     Int(1),
		"name":  Str("worker"),
		"block": Matrix(&Mat{Rows: 1, Cols: 2, Data: []float64{math.Pi, -1}}),
		"":      Nil(),
	}
	enc, err := AppendEnv(nil, env)
	if err != nil {
		t.Fatalf("AppendEnv: %v", err)
	}
	if got := EnvWireSize(env); got != len(enc) {
		t.Errorf("EnvWireSize = %d, encoded = %d", got, len(enc))
	}
	dec, n, err := DecodeEnv(enc)
	if err != nil {
		t.Fatalf("DecodeEnv: %v", err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d bytes", n, len(enc))
	}
	if len(dec) != len(env) {
		t.Fatalf("got %d entries, want %d", len(dec), len(env))
	}
	for k, v := range env {
		if !dec[k].Equal(v) {
			t.Errorf("env[%q]: got %v, want %v", k, dec[k], v)
		}
	}
}

func TestEnvEncodingIsDeterministic(t *testing.T) {
	env := map[string]Value{"b": Int(2), "a": Int(1), "c": Int(3)}
	first, err := AppendEnv(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got, _ := AppendEnv(nil, env); string(got) != string(first) {
			t.Fatal("AppendEnv is not deterministic across map iteration orders")
		}
	}
}

// TestAppendRejectsOversized crafts values whose encoded length exceeds the
// uint32-safe bound; Append must report an error instead of truncating the
// length prefix (the old behavior produced frames the decoder rejects — or
// worse, accepts with the wrong length).
func TestAppendRejectsOversized(t *testing.T) {
	// A matrix header can claim absurd dimensions without allocating the
	// backing data, which is how a crafted value trips the guard cheaply.
	huge := Matrix(&Mat{Rows: maxWireLen + 1, Cols: 1})
	if _, err := Append(nil, huge); err == nil {
		t.Error("Append accepted an oversized matrix")
	}
	// The guard must propagate out of nested containers...
	if _, err := Append(nil, Arr([]Value{Int(1), huge})); err == nil {
		t.Error("Append accepted an array containing an oversized matrix")
	}
	// ...and out of env encoding.
	if _, err := AppendEnv(nil, map[string]Value{"m": huge}); err == nil {
		t.Error("AppendEnv accepted an oversized value")
	}
}

func TestEnvDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 0, 0, 0},                  // missing key
		{1, 0, 0, 0, 3, 0, 0, 0},      // truncated key
		{1, 0, 0, 0, 1, 0, 0, 0, 'k'}, // missing value
	}
	for i, c := range cases {
		if _, _, err := DecodeEnv(c); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCloneEnv(t *testing.T) {
	env := map[string]Value{"a": Bytes([]byte{1})}
	cl := CloneEnv(env)
	env["a"].AsBytes()[0] = 9
	if cl["a"].AsBytes()[0] != 1 {
		t.Error("CloneEnv must deep-copy values")
	}
}
