// Kind-specialized dispatch handlers: the proof-spending half of the
// bytecode kind-flow verifier (bytecode/kinds.go).
//
// Lowering under LowerKind swaps an instruction for a specialized variant
// only at source PCs where the verifier proved the operand kinds, and
// Restore re-checks every value a snapshot injects against the same
// proofs, so the handlers here read payloads directly (value.IntRaw /
// value.NumRaw) with no dynamic kind guard. Semantics must stay
// byte-identical to the switch oracle:
//
//   - ordered int/int comparisons promote both sides through float64,
//     exactly like value.Compare (Eq/Ne stay exact int64, like FastEqual);
//   - int division or modulo by a dynamic zero keeps the oracle's error
//     text and source PC, with the fused tail refunded like the generic
//     handlers (a zero *constant* divisor is never specialized at all);
//   - float division by zero yields ±Inf and float modulo goes through
//     math.Mod, matching the general arith path.
//
// Everything else — stream shape, step charges, profile counts, snapshot
// bytes — is inherited unchanged from the generic fused stream, which the
// differential harness enforces trace-for-trace.
package vm

import (
	"math"

	"messengers/internal/bytecode"
)

// registerSpecialized installs the handlers for the kind-specialized
// opcode block. Called from the init in threaded.go so registration is
// complete before the table's nil-handler check runs.
func registerSpecialized(h *[bytecode.NumDOps]dhandler) {
	ariths := [5]bytecode.Op{bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod}
	for i, op := range ariths {
		h[bytecode.DAddII+bytecode.DOp(i)] = specArithII(op)
		h[bytecode.DAddNN+bytecode.DOp(i)] = specArithNN(op)
		h[bytecode.DAddIN+bytecode.DOp(i)] = specArithMixed(op, true)
		h[bytecode.DAddNI+bytecode.DOp(i)] = specArithMixed(op, false)
		h[bytecode.DFConstAddII+bytecode.DOp(i)] = specConstArithII(op)
		h[bytecode.DFConstAddNN+bytecode.DOp(i)] = specConstArithNN(op)
		h[bytecode.DFAddStoreMII+bytecode.DOp(i)] = specArithStoreII(op, true)
		h[bytecode.DFAddStoreLII+bytecode.DOp(i)] = specArithStoreII(op, false)
		h[bytecode.DFAddStoreMNN+bytecode.DOp(i)] = specArithStoreNN(op, true)
		h[bytecode.DFAddStoreLNN+bytecode.DOp(i)] = specArithStoreNN(op, false)
		h[bytecode.DFMCAddStoreMII+bytecode.DOp(i)] = specSlotArithStoreII(op, false)
		h[bytecode.DFLCAddStoreLII+bytecode.DOp(i)] = specSlotArithStoreII(op, true)
	}
	h[bytecode.DFEqJzII] = func(t *texec, d *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		t.sp -= 2
		if a.IntRaw() != b.IntRaw() {
			t.dpc = int(d.A)
		}
		return true
	}
	h[bytecode.DFNeJzII] = func(t *texec, d *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		t.sp -= 2
		if a.IntRaw() == b.IntRaw() {
			t.dpc = int(d.A)
		}
		return true
	}
	cmps := [4]bytecode.Op{bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe}
	for i, op := range cmps {
		h[bytecode.DFLtJzII+bytecode.DOp(i)] = specCmpJzII(op)
		h[bytecode.DFMMLtJzII+bytecode.DOp(i)] = specSlotCmpJzII(op, false, false)
		h[bytecode.DFMCLtJzII+bytecode.DOp(i)] = specSlotCmpJzII(op, false, true)
		h[bytecode.DFLLLtJzII+bytecode.DOp(i)] = specSlotCmpJzII(op, true, false)
		h[bytecode.DFLCLtJzII+bytecode.DOp(i)] = specSlotCmpJzII(op, true, true)
	}
}

// specArithII: both stack operands proven Int. Add/Sub/Mul are guard-free;
// Div/Mod keep the dynamic zero check with the oracle's error text.
func specArithII(op bytecode.Op) dhandler {
	switch op {
	case bytecode.OpAdd:
		return func(t *texec, _ *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			a.SetInt(a.IntRaw() + b.IntRaw())
			t.sp--
			return true
		}
	case bytecode.OpSub:
		return func(t *texec, _ *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			a.SetInt(a.IntRaw() - b.IntRaw())
			t.sp--
			return true
		}
	case bytecode.OpMul:
		return func(t *texec, _ *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			a.SetInt(a.IntRaw() * b.IntRaw())
			t.sp--
			return true
		}
	case bytecode.OpDiv:
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			y := b.IntRaw()
			if y == 0 {
				t.sp -= 2
				return t.fail(d.Src, "integer division by zero")
			}
			a.SetInt(a.IntRaw() / y)
			t.sp--
			return true
		}
	default: // OpMod
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			y := b.IntRaw()
			if y == 0 {
				t.sp -= 2
				return t.fail(d.Src, "integer modulo by zero")
			}
			a.SetInt(a.IntRaw() % y)
			t.sp--
			return true
		}
	}
}

// specArithNN: both operands proven Num. No faults exist on this path —
// float division by zero is ±Inf and modulo is math.Mod, like the oracle.
func specArithNN(op bytecode.Op) dhandler {
	switch op {
	case bytecode.OpAdd:
		return func(t *texec, _ *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			a.SetNum(a.NumRaw() + b.NumRaw())
			t.sp--
			return true
		}
	case bytecode.OpSub:
		return func(t *texec, _ *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			a.SetNum(a.NumRaw() - b.NumRaw())
			t.sp--
			return true
		}
	case bytecode.OpMul:
		return func(t *texec, _ *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			a.SetNum(a.NumRaw() * b.NumRaw())
			t.sp--
			return true
		}
	case bytecode.OpDiv:
		return func(t *texec, _ *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			a.SetNum(a.NumRaw() / b.NumRaw())
			t.sp--
			return true
		}
	default: // OpMod
		return func(t *texec, _ *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			a.SetNum(math.Mod(a.NumRaw(), b.NumRaw()))
			t.sp--
			return true
		}
	}
}

// floatOp resolves the float transfer once per constructed handler (mixed
// int/num operands always produce a Num, so one table serves both shapes).
func floatOp(op bytecode.Op) func(x, y float64) float64 {
	switch op {
	case bytecode.OpAdd:
		return func(x, y float64) float64 { return x + y }
	case bytecode.OpSub:
		return func(x, y float64) float64 { return x - y }
	case bytecode.OpMul:
		return func(x, y float64) float64 { return x * y }
	case bytecode.OpDiv:
		return func(x, y float64) float64 { return x / y }
	default: // OpMod
		return math.Mod
	}
}

// specArithMixed: one operand proven Int, the other Num (aInt names which).
// Promotes through float64 like the general path; faultless.
func specArithMixed(op bytecode.Op, aInt bool) dhandler {
	f := floatOp(op)
	if aInt {
		return func(t *texec, _ *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			a.SetNum(f(float64(a.IntRaw()), b.NumRaw()))
			t.sp--
			return true
		}
	}
	return func(t *texec, _ *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		a.SetNum(f(a.NumRaw(), float64(b.IntRaw())))
		t.sp--
		return true
	}
}

// specConstArithII: stack top and constant proven Int. Lowering never
// specializes a zero int constant under Div/Mod, so every variant here is
// guard-free.
func specConstArithII(op bytecode.Op) dhandler {
	switch op {
	case bytecode.OpAdd:
		return func(t *texec, d *bytecode.DInstr) bool {
			a := &t.stack[t.sp-1]
			a.SetInt(a.IntRaw() + d.Val.IntRaw())
			return true
		}
	case bytecode.OpSub:
		return func(t *texec, d *bytecode.DInstr) bool {
			a := &t.stack[t.sp-1]
			a.SetInt(a.IntRaw() - d.Val.IntRaw())
			return true
		}
	case bytecode.OpMul:
		return func(t *texec, d *bytecode.DInstr) bool {
			a := &t.stack[t.sp-1]
			a.SetInt(a.IntRaw() * d.Val.IntRaw())
			return true
		}
	case bytecode.OpDiv:
		return func(t *texec, d *bytecode.DInstr) bool {
			a := &t.stack[t.sp-1]
			a.SetInt(a.IntRaw() / d.Val.IntRaw())
			return true
		}
	default: // OpMod
		return func(t *texec, d *bytecode.DInstr) bool {
			a := &t.stack[t.sp-1]
			a.SetInt(a.IntRaw() % d.Val.IntRaw())
			return true
		}
	}
}

// specConstArithNN: stack top and constant proven Num; faultless.
func specConstArithNN(op bytecode.Op) dhandler {
	f := floatOp(op)
	return func(t *texec, d *bytecode.DInstr) bool {
		a := &t.stack[t.sp-1]
		a.SetNum(f(a.NumRaw(), d.Val.NumRaw()))
		return true
	}
}

// specCmpJzII: ordered compare-and-branch over two proven ints. The
// promotion through float64 is deliberate — value.Compare orders int/int
// through float64, and the specialized stream must agree bit for bit.
func specCmpJzII(op bytecode.Op) dhandler {
	switch op {
	case bytecode.OpLt:
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			t.sp -= 2
			if !(float64(a.IntRaw()) < float64(b.IntRaw())) {
				t.dpc = int(d.A)
			}
			return true
		}
	case bytecode.OpLe:
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			t.sp -= 2
			if !(float64(a.IntRaw()) <= float64(b.IntRaw())) {
				t.dpc = int(d.A)
			}
			return true
		}
	case bytecode.OpGt:
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			t.sp -= 2
			if !(float64(a.IntRaw()) > float64(b.IntRaw())) {
				t.dpc = int(d.A)
			}
			return true
		}
	default: // OpGe
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			t.sp -= 2
			if !(float64(a.IntRaw()) >= float64(b.IntRaw())) {
				t.dpc = int(d.A)
			}
			return true
		}
	}
}

// specII reads the loop-head operands for a slot compare: slot A against
// slot B or the inline constant, both proven Int, already promoted.
func (t *texec) specII(d *bytecode.DInstr, local, constB bool) (x, y float64) {
	arr := t.slots
	if local {
		arr = t.locals
	}
	x = float64(arr[d.A].IntRaw())
	if constB {
		y = float64(d.Val.IntRaw())
	} else {
		y = float64(arr[d.B].IntRaw())
	}
	return x, y
}

// specSlotCmpJzII: the guard-free quad loop head — load, load-or-const,
// compare, branch — over proven ints. Nothing on this path can fault.
func specSlotCmpJzII(op bytecode.Op, local, constB bool) dhandler {
	switch op {
	case bytecode.OpLt:
		return func(t *texec, d *bytecode.DInstr) bool {
			if x, y := t.specII(d, local, constB); !(x < y) {
				t.dpc = int(d.C)
			}
			return true
		}
	case bytecode.OpLe:
		return func(t *texec, d *bytecode.DInstr) bool {
			if x, y := t.specII(d, local, constB); !(x <= y) {
				t.dpc = int(d.C)
			}
			return true
		}
	case bytecode.OpGt:
		return func(t *texec, d *bytecode.DInstr) bool {
			if x, y := t.specII(d, local, constB); !(x > y) {
				t.dpc = int(d.C)
			}
			return true
		}
	default: // OpGe
		return func(t *texec, d *bytecode.DInstr) bool {
			if x, y := t.specII(d, local, constB); !(x >= y) {
				t.dpc = int(d.C)
			}
			return true
		}
	}
}

// specArithStoreII: arithmetic over two proven-int stack operands stored
// straight into a slot. Div/Mod keep the dynamic zero check; the trailing
// store is refunded on fault exactly like the generic handler.
func specArithStoreII(op bytecode.Op, toMessenger bool) dhandler {
	switch op {
	case bytecode.OpAdd:
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			t.specStoreInt(d, toMessenger, a.IntRaw()+b.IntRaw())
			return true
		}
	case bytecode.OpSub:
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			t.specStoreInt(d, toMessenger, a.IntRaw()-b.IntRaw())
			return true
		}
	case bytecode.OpMul:
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			t.specStoreInt(d, toMessenger, a.IntRaw()*b.IntRaw())
			return true
		}
	case bytecode.OpDiv:
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			y := b.IntRaw()
			if y == 0 {
				t.sp -= 2
				t.refundLast(d)
				return t.fail(d.Src, "integer division by zero")
			}
			t.specStoreInt(d, toMessenger, a.IntRaw()/y)
			return true
		}
	default: // OpMod
		return func(t *texec, d *bytecode.DInstr) bool {
			a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
			y := b.IntRaw()
			if y == 0 {
				t.sp -= 2
				t.refundLast(d)
				return t.fail(d.Src, "integer modulo by zero")
			}
			t.specStoreInt(d, toMessenger, a.IntRaw()%y)
			return true
		}
	}
}

func (t *texec) specStoreInt(d *bytecode.DInstr, toMessenger bool, r int64) {
	t.sp -= 2
	if toMessenger {
		t.slots[d.A].SetInt(r)
		t.dirty[d.A] = true
	} else {
		t.locals[d.A].SetInt(r)
	}
}

func (t *texec) specStoreNum(d *bytecode.DInstr, toMessenger bool, r float64) {
	t.sp -= 2
	if toMessenger {
		t.slots[d.A].SetNum(r)
		t.dirty[d.A] = true
	} else {
		t.locals[d.A].SetNum(r)
	}
}

// specArithStoreNN: the proven-float arith-store; faultless.
func specArithStoreNN(op bytecode.Op, toMessenger bool) dhandler {
	f := floatOp(op)
	return func(t *texec, d *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		t.specStoreNum(d, toMessenger, f(a.NumRaw(), b.NumRaw()))
		return true
	}
}

// specSlotArithStoreII: the guard-free quad increment — slot A ⊕ constant
// into slot B — over proven ints. Div/Mod exist here only for nonzero
// constants (lowering refuses otherwise), so no variant can fault.
func specSlotArithStoreII(op bytecode.Op, local bool) dhandler {
	switch op {
	case bytecode.OpAdd:
		return func(t *texec, d *bytecode.DInstr) bool {
			t.specIncStore(d, local, t.specIncLoad(d, local)+d.Val.IntRaw())
			return true
		}
	case bytecode.OpSub:
		return func(t *texec, d *bytecode.DInstr) bool {
			t.specIncStore(d, local, t.specIncLoad(d, local)-d.Val.IntRaw())
			return true
		}
	case bytecode.OpMul:
		return func(t *texec, d *bytecode.DInstr) bool {
			t.specIncStore(d, local, t.specIncLoad(d, local)*d.Val.IntRaw())
			return true
		}
	case bytecode.OpDiv:
		return func(t *texec, d *bytecode.DInstr) bool {
			t.specIncStore(d, local, t.specIncLoad(d, local)/d.Val.IntRaw())
			return true
		}
	default: // OpMod
		return func(t *texec, d *bytecode.DInstr) bool {
			t.specIncStore(d, local, t.specIncLoad(d, local)%d.Val.IntRaw())
			return true
		}
	}
}

func (t *texec) specIncLoad(d *bytecode.DInstr, local bool) int64 {
	if local {
		return t.locals[d.A].IntRaw()
	}
	return t.slots[d.A].IntRaw()
}

func (t *texec) specIncStore(d *bytecode.DInstr, local bool, r int64) {
	if local {
		t.locals[d.B].SetInt(r)
		return
	}
	t.slots[d.B].SetInt(r)
	t.dirty[d.B] = true
}
