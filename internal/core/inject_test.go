package core

import (
	"strings"
	"testing"

	"messengers/internal/value"
)

func TestInjectNativeSpawnsMessengers(t *testing.T) {
	k, sys := simSystem(t, 2)
	register(t, sys, "child", `
		node.children = node.children + 1;
		print("child", tag, "on", $address);
	`)
	register(t, sys, "parent", `
		inject("child", "init", "tag", 1);
		inject("child", "init", "tag", 2);
	`)
	if err := sys.Inject(1, "parent", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	// Children run on the parent's daemon.
	if v := sys.Daemon(1).Store().Init().Vars["children"]; v.AsInt() != 2 {
		t.Errorf("children = %v", v)
	}
	out := sys.Output()
	if len(out) != 2 || !strings.Contains(out[0], "on d1") {
		t.Errorf("output = %v", out)
	}
}

func TestInjectNativeDefaultNode(t *testing.T) {
	k, sys := simSystem(t, 1)
	register(t, sys, "leaf", `node.ran = 1;`)
	register(t, sys, "root", `inject("leaf");`)
	if err := sys.Inject(0, "root", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if v := sys.Daemon(0).Store().Init().Vars["ran"]; v.AsInt() != 1 {
		t.Errorf("ran = %v", v)
	}
}

func TestInjectNativeChainTerminates(t *testing.T) {
	// A chain of injections: each Messenger injects the next until the
	// countdown reaches zero; liveness accounting must drain to zero.
	k, sys := simSystem(t, 3)
	register(t, sys, "chain", `
		node.depth = n;
		if (n > 0) {
			inject("chain", "init", "n", n - 1);
		}
	`)
	if err := sys.Inject(0, "chain", map[string]value.Value{"n": value.Int(5)}); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if v := sys.Daemon(0).Store().Init().Vars["depth"]; v.AsInt() != 0 {
		t.Errorf("final depth = %v", v)
	}
	if st := sys.TotalStats(); st.Finished != 6 {
		t.Errorf("finished = %d, want 6", st.Finished)
	}
}

func TestInjectNativeErrors(t *testing.T) {
	cases := map[string]string{
		`inject();`:             "needs a script name",
		`inject(42);`:           "needs a script name",
		`inject("nope");`:       "not registered",
		`inject("self", 1);`:    "name/value pairs",
		`inject("self", 1, 2);`: "must be a string",
	}
	for src, want := range cases {
		k, sys := simSystem(t, 1)
		register(t, sys, "self", src)
		if err := sys.Inject(0, "self", nil); err != nil {
			t.Fatal(err)
		}
		k.Run()
		errs := sys.Errors()
		if len(errs) != 1 || !strings.Contains(errs[0].Error(), want) {
			t.Errorf("%q: errors = %v, want %q", src, errs, want)
		}
		if live := sys.Live(); live != 0 {
			t.Errorf("%q: live = %d", src, live)
		}
	}
}
