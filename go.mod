module messengers

go 1.22
