// mgvt benchmarks global-virtual-time maintenance and the scale-out kernel
// work that feeds it, recording the trajectory into BENCH_gvt.json:
//
//   - scale: a virtual-time workload (per-daemon walkers alternating
//     sched_dlt epochs with ring hops) swept over daemon counts under both
//     GVT implementations — the centralized coordinator and the distributed
//     ring reduction — recording rounds, commits, control-message counts,
//     mean round latency, and hop throughput. The headline numbers: the
//     coordinator funnels O(N) control messages per round through daemon 0,
//     the ring costs ≤2 per daemon per round with no convergence point.
//   - khost: the same workload at 1k simulated hosts (the E1-style scale
//     point), ring vs. coordinator.
//   - queue: the event-kernel microbenchmark at 1k-host event rates —
//     heap vs. calendar vs. adaptive pending-event sets, wall-clock
//     events/second.
//   - tcp: a ≥16-daemon run over real TCP sockets with distributed GVT,
//     wall-clock round latency and hop throughput.
//   - hop_batching: WithHopBatching measured off vs. on over TCP on two
//     workloads — a fan-out star (where coalescing has maximal opportunity)
//     and the serial ring walk (where it has none, so the delta is pure
//     outbox overhead) — with the default-setting verdict recorded; see
//     docs/GVT.md.
//
// mgvt exits nonzero if the ring protocol exceeds its 2-control-messages-
// per-daemon-per-round budget (excluding quiescence notifications), or if
// any run fails.
//
//	mgvt -out BENCH_gvt.json
//	mgvt -short -skip-tcp
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"messengers"
	"messengers/internal/core"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// ringWalk alternates virtual-time epochs with hops around the logical
// ring, so every round of GVT has both suspended wake-ups and transient
// Messengers to account for.
const ringWalk = `
	for (k = 0; k < epochs; k++) {
		sched_dlt(0.5);
		hop(ll = "ring", ldir = +);
	}
`

type scaleResult struct {
	Engine  string `json:"engine"` // "sim" or "tcp"
	Impl    string `json:"impl"`   // "coordinator" or "ring"
	Daemons int    `json:"daemons"`
	Walkers int    `json:"walkers"`
	Epochs  int    `json:"epochs"`

	Rounds  int64 `json:"rounds"`
	Commits int   `json:"commits"`
	// CtlMsgs is the total GVT control traffic (queries, reports,
	// advances, tokens, notifications) across all daemons.
	CtlMsgs int64 `json:"ctl_msgs"`
	// CtlDaemon0PerRound is daemon 0's share per round — the coordinator's
	// O(N) bottleneck, the ring initiator's O(1).
	CtlDaemon0PerRound float64 `json:"ctl_daemon0_per_round"`
	// CtlMaxPerDaemonRound is the worst daemon's per-round control sends
	// with quiescence notifications subtracted: the protocol cost proper.
	// The ring's budget is 2 (one token forward per pass).
	CtlMaxPerDaemonRound float64 `json:"ctl_max_per_daemon_round"`
	// RoundMs is the mean GVT round latency (simulated ms on sim, wall ms
	// on tcp).
	RoundMs float64 `json:"round_ms"`
	// Hops and HopsPerS are remote hops and their rate over the run
	// (simulated time on sim, wall time on tcp).
	Hops     int64   `json:"hops"`
	HopsPerS float64 `json:"hops_per_s"`
	// ElapsedS is the makespan (simulated s on sim, wall s on tcp).
	ElapsedS float64 `json:"elapsed_s"`
	WallS    float64 `json:"wall_s"`
}

type queueResult struct {
	Impl      string  `json:"impl"`
	Hosts     int     `json:"hosts"`
	Events    int64   `json:"events"`
	WallS     float64 `json:"wall_s"`
	EventsPerS float64 `json:"events_per_s"`
}

// batchSide is one arm of a hop-batching A/B run.
type batchSide struct {
	NetMsgs    int64   `json:"net_msgs"` // frames on the wire
	NetBytes   int64   `json:"net_bytes"`
	NetBatches int64   `json:"net_batches"` // MsgBatch frames among them
	Hops       int64   `json:"hops"`
	WallS      float64 `json:"wall_s"`
	HopsPerS   float64 `json:"hops_per_s"`
}

// batchRunResult is one workload's off-vs-on comparison.
type batchRunResult struct {
	Workload string    `json:"workload"`
	Daemons  int       `json:"daemons"`
	Fan      int       `json:"fan,omitempty"`
	Epochs   int       `json:"epochs"`
	Off      batchSide `json:"off"`
	On       batchSide `json:"on"`
	// FrameRatio is off.NetMsgs / on.NetMsgs: how many wire frames
	// coalescing saved (1.0 = none).
	FrameRatio float64 `json:"frame_ratio"`
	// Speedup is on.HopsPerS / off.HopsPerS.
	Speedup float64 `json:"speedup"`
}

// batchVerdict is the recorded default-setting decision.
type batchVerdict struct {
	Runs    []batchRunResult `json:"runs"`
	Default string           `json:"default"`
	Verdict string           `json:"verdict"`
}

type benchFile struct {
	GeneratedAt string        `json:"generated_at"`
	Scale       []scaleResult `json:"scale"`
	KHost       []scaleResult `json:"khost"`
	Queue       []queueResult `json:"queue"`
	TCP         []scaleResult `json:"tcp"`
	HopBatching *batchVerdict `json:"hop_batching,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_gvt.json", "output JSON path")
	short := flag.Bool("short", false, "reduced sweep for CI sanity")
	skipTCP := flag.Bool("skip-tcp", false, "skip the TCP leg")
	tcpDaemons := flag.Int("tcp-daemons", 16, "daemon count for the TCP leg")
	flag.Parse()

	file := benchFile{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	violations := 0

	counts := []int{8, 16, 32, 64}
	epochs := 20
	if *short {
		counts = []int{4, 8}
		epochs = 8
	}
	for _, n := range counts {
		for _, impl := range []string{"coordinator", "ring"} {
			r, err := simRun(n, epochs, impl == "ring")
			if err != nil {
				fatal(err)
			}
			violations += check(r)
			file.Scale = append(file.Scale, *r)
			fmt.Printf("sim  %-11s n=%-4d rounds=%-5d ctl/d0/round=%-8.1f ctl/max/round=%-6.2f round=%.3fms hops/s=%.0f\n",
				impl, n, r.Rounds, r.CtlDaemon0PerRound, r.CtlMaxPerDaemonRound, r.RoundMs, r.HopsPerS)
		}
	}

	// The 1k-host scale point stays at full size even under -short (fewer
	// epochs only): CI's bench sanity doubles as the 1k-host smoke test.
	khostN, khostEpochs := 1000, 3
	if *short {
		khostEpochs = 2
	}
	for _, impl := range []string{"coordinator", "ring"} {
		r, err := simRun(khostN, khostEpochs, impl == "ring")
		if err != nil {
			fatal(err)
		}
		violations += check(r)
		file.KHost = append(file.KHost, *r)
		fmt.Printf("sim  %-11s n=%-4d rounds=%-5d ctl/d0/round=%-8.1f ctl/max/round=%-6.2f round=%.3fms hops/s=%.0f\n",
			impl, khostN, r.Rounds, r.CtlDaemon0PerRound, r.CtlMaxPerDaemonRound, r.RoundMs, r.HopsPerS)
	}

	events := int64(2_000_000)
	if *short {
		events = 200_000
	}
	for _, impl := range []string{"heap", "calendar", "adaptive"} {
		q := queueRun(impl, 1000, events)
		file.Queue = append(file.Queue, q)
		fmt.Printf("queue %-9s hosts=%d events=%d wall=%.3fs rate=%.0f/s\n",
			impl, q.Hosts, q.Events, q.WallS, q.EventsPerS)
	}

	if !*skipTCP {
		n := *tcpDaemons
		tcpEpochs := 10
		if *short {
			n, tcpEpochs = 8, 5
		}
		for _, impl := range []string{"coordinator", "ring"} {
			r, err := tcpRun(n, tcpEpochs, impl == "ring")
			if err != nil {
				fatal(err)
			}
			violations += check(r)
			file.TCP = append(file.TCP, *r)
			fmt.Printf("tcp  %-11s n=%-4d rounds=%-5d ctl/d0/round=%-8.1f ctl/max/round=%-6.2f round=%.3fms hops/s=%.0f\n",
				impl, n, r.Rounds, r.CtlDaemon0PerRound, r.CtlMaxPerDaemonRound, r.RoundMs, r.HopsPerS)
		}

		v, err := batchVerdictRun(*short)
		if err != nil {
			fatal(err)
		}
		file.HopBatching = v
	}

	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "mgvt: %d control-message budget violations\n", violations)
		os.Exit(1)
	}
}

// check enforces the ring's per-round control budget and returns the
// number of violations found.
func check(r *scaleResult) int {
	if r.Impl != "ring" {
		return 0
	}
	if r.Rounds > 0 && r.CtlMaxPerDaemonRound > 2.0 {
		fmt.Fprintf(os.Stderr, "mgvt: %s n=%d: %.2f control messages per daemon per round exceeds the ring budget of 2\n",
			r.Engine, r.Daemons, r.CtlMaxPerDaemonRound)
		return 1
	}
	return 0
}

// ringSpec lays one logical node per daemon and closes them into a
// directed ring of "ring" links.
func ringSpec(n int) messengers.NetSpec {
	spec := messengers.NetSpec{}
	name := func(i int) string { return fmt.Sprintf("r%d", i) }
	for i := 0; i < n; i++ {
		spec.Nodes = append(spec.Nodes, messengers.NetNode{Name: name(i), Daemon: i})
	}
	for i := 0; i < n; i++ {
		spec.Links = append(spec.Links, messengers.NetLink{
			A: name(i), B: name((i + 1) % n), Name: "ring", Dir: 1,
		})
	}
	return spec
}

// collect reads per-daemon GVT statistics. On the (finished, single-
// threaded) sim engine it reads directly; on live engines it runs on each
// daemon's own executor to avoid racing it.
func collect(sys *core.System, n int, r *scaleResult, elapsedS float64, direct bool) {
	type row struct {
		ctl, rounds, suspends, hops int64
		roundTime                   sim.Time
	}
	read := func(d *core.Daemon) row {
		return row{
			ctl:       d.Stats.GVTCtlMsgs,
			rounds:    d.Stats.GVTRounds,
			suspends:  d.Stats.Suspends,
			hops:      d.Stats.RemoteHops,
			roundTime: d.Stats.GVTRoundTime,
		}
	}
	rows := make([]row, n)
	for i := 0; i < n; i++ {
		if direct {
			rows[i] = read(sys.Daemon(i))
			continue
		}
		i := i
		done := make(chan struct{})
		sys.Do(i, func(d *core.Daemon) {
			rows[i] = read(d)
			close(done)
		})
		<-done
	}
	r.Rounds = rows[0].rounds
	r.Commits = len(sys.CommitLog())
	for i, row := range rows {
		r.CtlMsgs += row.ctl
		r.Hops += row.hops
		if r.Rounds > 0 {
			adj := float64(row.ctl-row.suspends) / float64(r.Rounds)
			if adj > r.CtlMaxPerDaemonRound {
				r.CtlMaxPerDaemonRound = adj
			}
			if i == 0 {
				r.CtlDaemon0PerRound = float64(row.ctl) / float64(r.Rounds)
			}
		}
	}
	if r.Rounds > 0 {
		r.RoundMs = float64(rows[0].roundTime) / float64(r.Rounds) / 1e6
	}
	r.ElapsedS = elapsedS
	if elapsedS > 0 {
		r.HopsPerS = float64(r.Hops) / elapsedS
	}
}

func simRun(n, epochs int, ring bool) (*scaleResult, error) {
	impl := "coordinator"
	if ring {
		impl = "ring"
	}
	r := &scaleResult{Engine: "sim", Impl: impl, Daemons: n, Walkers: n, Epochs: epochs}
	start := time.Now()
	sys, err := messengers.NewSimSystem(messengers.Config{
		Daemons:        n,
		DistributedGVT: ring,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.BuildNetwork(ringSpec(n)); err != nil {
		return nil, err
	}
	if err := sys.CompileAndRegister("walk", ringWalk); err != nil {
		return nil, err
	}
	vars := map[string]value.Value{"epochs": value.Int(int64(epochs))}
	for i := 0; i < n; i++ {
		if err := sys.InjectAt(i, "walk", fmt.Sprintf("r%d", i), vars); err != nil {
			return nil, err
		}
	}
	elapsed := sys.RunSim()
	if errs := sys.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("sim n=%d %s: %v", n, impl, errs[0])
	}
	collect(sys.System, n, r, float64(elapsed)/1e9, true)
	r.WallS = time.Since(start).Seconds()
	return r, nil
}

func tcpRun(n, epochs int, ring bool) (*scaleResult, error) {
	impl := "coordinator"
	if ring {
		impl = "ring"
	}
	r := &scaleResult{Engine: "tcp", Impl: impl, Daemons: n, Walkers: n, Epochs: epochs}
	sys, err := messengers.NewTCPSystem(messengers.Config{
		Daemons:        n,
		DistributedGVT: ring,
		GVTInterval:    messengers.SimTime(2 * time.Millisecond),
	}, nil)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := sys.BuildNetwork(ringSpec(n)); err != nil {
		return nil, err
	}
	if err := sys.CompileAndRegister("walk", ringWalk); err != nil {
		return nil, err
	}
	vars := map[string]value.Value{"epochs": value.Int(int64(epochs))}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := sys.InjectAt(i, "walk", fmt.Sprintf("r%d", i), vars); err != nil {
			return nil, err
		}
	}
	sys.Wait()
	wall := time.Since(start).Seconds()
	if errs := sys.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("tcp n=%d %s: %v", n, impl, errs[0])
	}
	collect(sys.System, n, r, wall, false)
	r.WallS = wall
	return r, nil
}

// queueRun measures raw event-kernel throughput: `hosts` self-rescheduling
// timers with staggered periods, `events` firings total, against the
// chosen pending-event set implementation.
func queueRun(impl string, hosts int, events int64) queueResult {
	k := sim.NewWithQueue(impl)
	var fired int64
	start := time.Now()
	for h := 0; h < hosts; h++ {
		h := h
		period := sim.Time(1000 + 17*h)
		var tick func()
		tick = func() {
			fired++
			if fired < events {
				k.After(period, tick)
			}
		}
		k.After(period, tick)
	}
	k.Run()
	wall := time.Since(start).Seconds()
	q := queueResult{Impl: impl, Hosts: hosts, Events: fired, WallS: wall}
	if wall > 0 {
		q.EventsPerS = float64(fired) / wall
	}
	return q
}

// fanWalk is the hop-batching stress: at the hub the hop replicates the
// Messenger to every leaf of the "out" star — all co-located on the next
// daemon, so one executor turn emits `fan` same-destination messages, the
// exact shape WithHopBatching coalesces. One designated survivor hops back
// to keep the lane going; the rest terminate on arrival.
const fanWalk = `
	for (k = 0; k < epochs; k++) {
		hop(ll = "out", ldir = +);
		if ($node != stay) { return; }
		hop(ll = "back", ldir = +);
	}
`

// fanSpec lays one hub per daemon whose `fan` leaves all live on the next
// daemon, plus a return link from leaf 0 back to the hub.
func fanSpec(n, fan int) messengers.NetSpec {
	spec := messengers.NetSpec{}
	for d := 0; d < n; d++ {
		hub := fmt.Sprintf("h%d", d)
		spec.Nodes = append(spec.Nodes, messengers.NetNode{Name: hub, Daemon: d})
		next := (d + 1) % n
		for j := 0; j < fan; j++ {
			leaf := fmt.Sprintf("f%d_%d", d, j)
			spec.Nodes = append(spec.Nodes, messengers.NetNode{Name: leaf, Daemon: next})
			spec.Links = append(spec.Links, messengers.NetLink{A: hub, B: leaf, Name: "out", Dir: 1})
		}
		spec.Links = append(spec.Links, messengers.NetLink{
			A: fmt.Sprintf("f%d_0", d), B: hub, Name: "back", Dir: 1,
		})
	}
	return spec
}

// batchSideRun executes one workload over TCP with batching off or on and
// reads the wire counters back out of the metrics registry.
func batchSideRun(workload string, n, fan, epochs int, batch bool) (batchSide, error) {
	met := obs.NewMetrics()
	sys, err := messengers.NewTCPSystem(messengers.Config{
		Daemons:     n,
		HopBatching: batch,
		Metrics:     met,
		GVTInterval: messengers.SimTime(2 * time.Millisecond),
	}, nil)
	if err != nil {
		return batchSide{}, err
	}
	defer sys.Close()
	var spec messengers.NetSpec
	var script string
	if workload == "fanout" {
		spec, script = fanSpec(n, fan), fanWalk
	} else {
		spec, script = ringSpec(n), ringWalk
	}
	if err := sys.BuildNetwork(spec); err != nil {
		return batchSide{}, err
	}
	if err := sys.CompileAndRegister("walk", script); err != nil {
		return batchSide{}, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		vars := map[string]value.Value{"epochs": value.Int(int64(epochs))}
		at := fmt.Sprintf("r%d", i)
		if workload == "fanout" {
			at = fmt.Sprintf("h%d", i)
			vars["stay"] = value.Str(fmt.Sprintf("f%d_0", i))
		}
		if err := sys.InjectAt(i, "walk", at, vars); err != nil {
			return batchSide{}, err
		}
	}
	sys.Wait()
	wall := time.Since(start).Seconds()
	if errs := sys.Errors(); len(errs) > 0 {
		return batchSide{}, fmt.Errorf("batch %s n=%d batch=%v: %v", workload, n, batch, errs[0])
	}
	s := batchSide{
		NetMsgs:    met.Counter("net.msgs").Value(),
		NetBytes:   met.Counter("net.bytes").Value(),
		NetBatches: met.Counter("net.batches").Value(),
		Hops:       met.Counter("msgr.hops.remote").Value(),
		WallS:      wall,
	}
	if wall > 0 {
		s.HopsPerS = float64(s.Hops) / wall
	}
	return s, nil
}

// batchVerdictRun runs the off/on comparison on both workloads and records
// the default-setting verdict. The default itself (Config.HopBatching,
// zero value off) is asserted here so the benchmark fails loudly if the
// recorded verdict and the shipped default ever drift apart.
func batchVerdictRun(short bool) (*batchVerdict, error) {
	n, fan, epochs := 8, 32, 200
	if short {
		fan, epochs = 16, 40
	}
	v := &batchVerdict{Default: "off"}
	for _, w := range []struct {
		name string
		fan  int
	}{{"fanout", fan}, {"ring", 0}} {
		r := batchRunResult{Workload: w.name, Daemons: n, Fan: w.fan, Epochs: epochs}
		var err error
		if r.Off, err = batchSideRun(w.name, n, w.fan, epochs, false); err != nil {
			return nil, err
		}
		if r.On, err = batchSideRun(w.name, n, w.fan, epochs, true); err != nil {
			return nil, err
		}
		if r.On.NetMsgs > 0 {
			r.FrameRatio = float64(r.Off.NetMsgs) / float64(r.On.NetMsgs)
		}
		if r.Off.HopsPerS > 0 {
			r.Speedup = r.On.HopsPerS / r.Off.HopsPerS
		}
		v.Runs = append(v.Runs, r)
		fmt.Printf("batch %-7s n=%d fan=%-3d frames %d -> %d (%.1fx)  hops/s %.0f -> %.0f (%.2fx)\n",
			w.name, n, w.fan, r.Off.NetMsgs, r.On.NetMsgs, r.FrameRatio, r.Off.HopsPerS, r.On.HopsPerS, r.Speedup)
	}
	v.Verdict = "batching wins on fan-out replication (fewer frames, higher hop " +
		"throughput) but coalesces nothing on serial one-hop-per-turn workloads, " +
		"where the outbox detour costs a few percent. The default stays off: the " +
		"paper-calibration experiments model the 1997 one-message-per-hop runtime, " +
		"and fan-out-heavy apps opt in (mandel/matmul -batch). See docs/GVT.md."
	return v, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mgvt:", err)
	os.Exit(1)
}
