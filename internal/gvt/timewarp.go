package gvt

import (
	"fmt"

	"messengers/internal/obs"
	"messengers/internal/sim"
)

// twRecord is one processed event kept for possible rollback.
type twRecord struct {
	ev     *tsEvent
	before State
	sent   []*tsEvent
}

// twLP is one logical process under Time Warp.
type twLP struct {
	id, host int
	state    State
	lvt      float64
	pending  tsHeap
	history  []*twRecord
	limbo    map[uint64]bool // anti-messages that overtook their positives
}

type twHost struct {
	id        int
	lps       []*twLP
	scheduled bool
}

// timeWarp is the optimistic executor.
type timeWarp struct {
	cfg   Config
	lps   []*twLP
	hosts []*twHost
	seq   uint64
	gvt   float64

	sent, recv int64 // inter-host event messages (statistics)
	// unfinished holds a virtual-time lower bound for every event that is
	// neither in a pending queue nor committed-and-safe: events being
	// executed (until their sends are transmitted) and events in flight
	// (until they arrive). GVT is the minimum over pending queues and this
	// set; without it a round could observe a momentarily empty system
	// and miscompute GVT (or falsely conclude quiescence).
	unfinished map[uint64]float64
	polling    bool
	epoch      int64
	reports    map[int]twReport
	stats      Stats
}

func (tw *timeWarp) unfinishedMin() float64 {
	min := inf
	//lint:maporder min over values is order-independent
	for _, at := range tw.unfinished {
		if at < min {
			min = at
		}
	}
	return min
}

type twReport struct {
	min        float64
	sent, recv int64
}

// RunTimeWarp executes the application optimistically and returns run
// statistics and each LP's final state. The injected events seed the
// computation at virtual time >= 0.
func RunTimeWarp(cfg Config, inject []Event) (Stats, []State, error) {
	tw := &timeWarp{cfg: cfg, unfinished: map[uint64]float64{}}
	if err := tw.setup(inject); err != nil {
		return Stats{}, nil, err
	}
	for _, h := range tw.hosts {
		tw.kick(h)
	}
	tw.startPolling()
	end := cfg.Cluster.Kernel.Run()
	tw.stats.Elapsed = end
	tw.stats.FinalGVT = tw.gvt
	states := make([]State, len(tw.lps))
	for i, lp := range tw.lps {
		states[i] = lp.state
	}
	// A drained kernel with unprocessed events would be a kernel bug.
	for _, lp := range tw.lps {
		if lp.pending.Len() > 0 {
			return tw.stats, states, fmt.Errorf("gvt: LP %d finished with %d pending events", lp.id, lp.pending.Len())
		}
	}
	return tw.stats, states, nil
}

func (tw *timeWarp) setup(inject []Event) error {
	cfg := tw.cfg
	if cfg.NumLPs < 1 || cfg.Handler == nil || cfg.Cluster == nil {
		return fmt.Errorf("gvt: config needs a cluster, LPs, and a handler")
	}
	tw.hosts = make([]*twHost, len(cfg.Cluster.Hosts))
	for i := range tw.hosts {
		tw.hosts[i] = &twHost{id: i}
	}
	tw.lps = make([]*twLP, cfg.NumLPs)
	for i := range tw.lps {
		h := cfg.place(i)
		if h < 0 || h >= len(tw.hosts) {
			return fmt.Errorf("gvt: LP %d placed on unknown host %d", i, h)
		}
		lp := &twLP{id: i, host: h, pending: newTSHeap(), limbo: map[uint64]bool{}}
		if cfg.InitState != nil {
			lp.state = cfg.InitState(i)
		}
		tw.lps[i] = lp
		tw.hosts[h].lps = append(tw.hosts[h].lps, lp)
	}
	for _, ev := range inject {
		if ev.To < 0 || ev.To >= len(tw.lps) {
			return fmt.Errorf("gvt: injected event for unknown LP %d", ev.To)
		}
		tw.seq++
		tw.lps[ev.To].pending.Push(&tsEvent{Event: ev, id: tw.seq})
	}
	return nil
}

// kick schedules host h to process its next pending event.
func (tw *timeWarp) kick(h *twHost) {
	if h.scheduled {
		return
	}
	if tw.nextLP(h) == nil {
		return
	}
	h.scheduled = true
	tw.cfg.Cluster.Hosts[h.id].Exec(0, func() {
		h.scheduled = false
		tw.processOne(h)
	})
}

// nextLP returns h's LP with the earliest pending event, respecting the
// optimism window.
func (tw *timeWarp) nextLP(h *twHost) *twLP {
	var best *twLP
	for _, lp := range h.lps {
		if lp.pending.Len() == 0 {
			continue
		}
		if tw.cfg.Window > 0 && lp.pending.minTS() >= tw.gvt+tw.cfg.Window {
			continue // beyond the optimism window; wait for GVT
		}
		if best == nil || lp.pending.minTS() < best.pending.minTS() {
			best = lp
		}
	}
	return best
}

// processOne executes the earliest pending event on host h (optimistically:
// no safety check).
func (tw *timeWarp) processOne(h *twHost) {
	lp := tw.nextLP(h)
	if lp == nil {
		return
	}
	ev := lp.pending.Pop()
	rec := &twRecord{ev: ev}
	if lp.state != nil {
		rec.before = lp.state.Clone()
	}
	lp.lvt = ev.At
	cost := tw.cfg.EventCPU
	ctx := &Ctx{
		lp: lp.id, now: ev.At, state: lp.state, charge: &cost,
		send: func(out Event) {
			tw.seq++
			rec.sent = append(rec.sent, &tsEvent{Event: out, id: tw.seq})
		},
	}
	tw.cfg.Handler(ctx, ev.Event)
	lp.history = append(lp.history, rec)
	tw.stats.Events++
	tw.unfinished[ev.id] = ev.At
	tw.cfg.Cluster.Hosts[h.id].ExecScaled(cost, func() {
		delete(tw.unfinished, ev.id)
		for _, out := range rec.sent {
			tw.transmit(h.id, out)
		}
		tw.kick(h)
	})
}

// transmit routes an event (or anti-message) toward its LP. Anti-messages
// share their positive's id, so the unfinished set keys them separately by
// flipping a high bit.
func (tw *timeWarp) transmit(fromHost int, ev *tsEvent) {
	toHost := tw.lps[ev.To].host
	cm := tw.cfg.Cluster.Model
	key := ev.id
	if ev.anti {
		key |= 1 << 63
	}
	tw.unfinished[key] = ev.At
	done := func() {
		delete(tw.unfinished, key)
		tw.arrive(ev)
	}
	if toHost == fromHost {
		tw.cfg.Cluster.Hosts[toHost].ExecScaled(cm.CallFixed, done)
		return
	}
	tw.sent++
	tw.cfg.Cluster.Send(fromHost, toHost, ev.Size+48, cm.CallFixed, cm.CallFixed, func() {
		tw.recv++
		done()
	})
}

// arrive handles an event or anti-message reaching its LP's host.
func (tw *timeWarp) arrive(ev *tsEvent) {
	lp := tw.lps[ev.To]
	h := tw.hosts[lp.host]
	if ev.anti {
		tw.annihilate(lp, ev)
		tw.kick(h)
		return
	}
	if lp.limbo[ev.id] {
		// Its anti-message arrived first; they cancel.
		delete(lp.limbo, ev.id)
		return
	}
	if ev.At < lp.lvt {
		// Straggler: roll the LP back to just before the event's time.
		tw.rollback(lp, ev.At)
	}
	lp.pending.Push(ev)
	tw.kick(h)
}

// annihilate cancels the positive copy of an anti-message.
func (tw *timeWarp) annihilate(lp *twLP, anti *tsEvent) {
	for i, p := range lp.pending.Items() {
		if p.id == anti.id {
			lp.pending.RemoveAt(i)
			return
		}
	}
	for _, rec := range lp.history {
		if rec.ev.id == anti.id {
			// The victim was already executed: roll back past it, which
			// reinserts it as pending, then remove it.
			tw.rollback(lp, anti.At)
			for i, p := range lp.pending.Items() {
				if p.id == anti.id {
					lp.pending.RemoveAt(i)
					break
				}
			}
			return
		}
	}
	// The anti-message overtook its positive (possible across rollback
	// paths); remember it.
	lp.limbo[anti.id] = true
}

// rollback undoes every processed event with timestamp >= ts: state is
// restored, the undone events return to the pending queue, and
// anti-messages chase everything they sent.
func (tw *timeWarp) rollback(lp *twLP, ts float64) {
	cut := len(lp.history)
	for cut > 0 && lp.history[cut-1].ev.At >= ts {
		cut--
	}
	if cut == len(lp.history) {
		return
	}
	tw.stats.Rollbacks++
	undone := lp.history[cut:]
	lp.history = lp.history[:cut]
	if tw.cfg.Trace != nil {
		tw.cfg.Trace.Instant(lp.host, "gvt", "tw.rollback",
			obs.I("lp", int64(lp.id)), obs.F("to", ts), obs.I("undone", int64(len(undone))))
	}
	var cost sim.Time
	for i := len(undone) - 1; i >= 0; i-- {
		rec := undone[i]
		lp.state = rec.before
		lp.pending.Push(rec.ev)
		tw.stats.RolledBack++
		cost += tw.cfg.EventCPU / 2
		for _, out := range rec.sent {
			anti := &tsEvent{Event: out.Event, id: out.id, anti: true}
			tw.stats.AntiMessages++
			if tw.cfg.Trace != nil {
				tw.cfg.Trace.Instant(lp.host, "gvt", "tw.antimsg",
					obs.I("lp", int64(lp.id)), obs.F("at", out.At))
			}
			tw.transmit(lp.host, anti)
		}
	}
	if cut > 0 {
		lp.lvt = lp.history[cut-1].ev.At
	} else {
		lp.lvt = tw.gvt
	}
	// Rollback work occupies the host CPU.
	tw.cfg.Cluster.Hosts[lp.host].ExecScaled(cost, nil)
}

// --- GVT computation and fossil collection ---

func (tw *timeWarp) startPolling() {
	if tw.polling {
		return
	}
	tw.polling = true
	tw.scheduleRound(tw.cfg.syncInterval())
}

func (tw *timeWarp) scheduleRound(after sim.Time) {
	tw.cfg.Cluster.Kernel.After(after, func() { tw.round() })
}

// round runs one coordinator GVT round: query each host (control messages
// on the wire), gather minima and transient counters, and advance/fossil
// when safe. For determinism and simplicity replies are gathered through
// the same message-cost accounting as the runtime uses.
func (tw *timeWarp) round() {
	tw.stats.Rounds++
	if tw.cfg.Trace != nil {
		tw.cfg.Trace.Instant(0, "gvt", "gvt.round", obs.I("round", tw.stats.Rounds))
	}
	cm := tw.cfg.Cluster.Model
	n := len(tw.hosts)
	replies := 0
	min := inf
	// Query/reply pairs cross the bus (hosts other than 0).
	for _, h := range tw.hosts {
		h := h
		deliverReply := func() {
			replies++
			for _, lp := range h.lps {
				if m := lp.pending.minTS(); m < min {
					min = m
				}
			}
			if replies == n {
				tw.concludeRound(min)
			}
		}
		tw.stats.ControlMsgs += 2
		if h.id == 0 {
			tw.cfg.Cluster.Hosts[0].ExecScaled(cm.CallFixed, deliverReply)
			continue
		}
		tw.cfg.Cluster.Send(0, h.id, ctlMsgSize, cm.CallFixed/2, cm.CallFixed/2, func() {
			tw.cfg.Cluster.Send(h.id, 0, ctlMsgSize, cm.CallFixed/2, cm.CallFixed/2, deliverReply)
		})
	}
}

func (tw *timeWarp) concludeRound(min float64) {
	if u := tw.unfinishedMin(); u < min {
		min = u
	}
	if min == inf {
		// Quiescent: nothing pending anywhere, nothing in flight. The
		// final GVT is the last finite value computed.
		tw.polling = false
		return
	}
	if min > tw.gvt {
		tw.gvt = min
		if tw.cfg.Trace != nil {
			tw.cfg.Trace.Instant(0, "gvt", "gvt.epoch", obs.F("gvt", min))
		}
		tw.fossilCollect()
		// A moving window may have released work.
		for _, h := range tw.hosts {
			tw.kick(h)
		}
	}
	tw.scheduleRound(tw.cfg.syncInterval())
}

// fossilCollect discards history that can never be rolled back again:
// records below GVT, further bounded by the configured FossilFloor.
func (tw *timeWarp) fossilCollect() {
	floor := tw.gvt
	if tw.cfg.FossilFloor != nil {
		if f := tw.cfg.FossilFloor(); f < floor {
			floor = f
		}
	}
	for _, lp := range tw.lps {
		cut := 0
		for cut < len(lp.history) && lp.history[cut].ev.At < floor {
			cut++
		}
		if cut > 0 {
			lp.history = append([]*twRecord(nil), lp.history[cut:]...)
		}
	}
}
