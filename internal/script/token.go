// Package script implements the front end of MSL, the Messenger Script
// Language: the lexer, the abstract syntax tree, and the parser.
//
// MSL is this reproduction's equivalent of the paper's "subset of C"
// Messenger scripts (§2.1). A script is the complete behavior a Messenger
// carries: computational statements (C-like expressions and control flow),
// navigational statements (hop, create, delete), scheduling calls on global
// virtual time, and invocations of registered native (Go) functions. Three
// variable spaces mirror the paper exactly:
//
//   - bare identifiers are Messenger variables — private state that travels
//     with the Messenger (inside functions, bare identifiers are locals and
//     Messenger variables are reached as msgr.x);
//   - node.x are node variables — resident at the current logical node and
//     shared by all Messengers visiting it;
//   - $x are read-only network variables ($address, $last, $node, ...).
package script

import "fmt"

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	FLOAT
	STRING

	// Punctuation and operators.
	LPAREN     // (
	RPAREN     // )
	LBRACE     // {
	RBRACE     // }
	LBRACK     // [
	RBRACK     // ]
	COMMA      // ,
	SEMI       // ;
	DOT        // .
	DOLLAR     // $
	TILDE      // ~
	ASSIGN     // =
	PLUS       // +
	MINUS      // -
	STAR       // *
	SLASH      // /
	PERCENT    // %
	NOT        // !
	EQ         // ==
	NE         // !=
	LT         // <
	LE         // <=
	GT         // >
	GE         // >=
	ANDAND     // &&
	OROR       // ||
	PLUSEQ     // +=
	MINUSEQ    // -=
	PLUSPLUS   // ++
	MINUSMINUS // --

	// Keywords.
	KwIf
	KwElse
	KwWhile
	KwFor
	KwBreak
	KwContinue
	KwReturn
	KwFunc
	KwNode
	KwEnd
	KwHop
	KwCreate
	KwDelete
	KwNil
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INT: "int literal",
	FLOAT: "float literal", STRING: "string literal",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACK: "[", RBRACK: "]", COMMA: ",", SEMI: ";", DOT: ".",
	DOLLAR: "$", TILDE: "~", ASSIGN: "=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%", NOT: "!",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	ANDAND: "&&", OROR: "||", PLUSEQ: "+=", MINUSEQ: "-=",
	PLUSPLUS: "++", MINUSMINUS: "--",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwBreak: "break", KwContinue: "continue", KwReturn: "return",
	KwFunc: "func", KwNode: "node", KwEnd: "end",
	KwHop: "hop", KwCreate: "create", KwDelete: "delete", KwNil: "nil",
}

// String returns a human-readable token kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"break": KwBreak, "continue": KwContinue, "return": KwReturn,
	"func": KwFunc, "node": KwNode, "end": KwEnd,
	"hop": KwHop, "create": KwCreate, "delete": KwDelete, "nil": KwNil,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string  // identifier name or raw literal text
	Int  int64   // value for INT
	Num  float64 // value for FLOAT
	Str  string  // decoded value for STRING
}

// Error is a positioned front-end error.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("msl:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
