package bench

import (
	"testing"

	"messengers/internal/lan"
)

// TestCalibrationPrint prints the headline figures for manual calibration:
// run with `go test ./internal/bench/ -run Calibration -v -calibrate`.
func TestCalibrationPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration print skipped in -short")
	}
	cm := lan.DefaultCostModel()

	f7, err := RunMandelFigure(cm, Fig7Sweep(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f7.Table().Format())
	t.Logf("F7 M/PVM at 32 procs: %.2f (paper ~5)", f7.MsgrOverPVM(0, len(f7.Sweep.Procs)-1))
	t.Logf("F7 M speedup over seq at 32 procs: %.1f (paper: almost linear)", f7.SpeedupOverSeq(0, len(f7.Sweep.Procs)-1))

	a, err := RunMatmulFigure(cm, Fig12aSweep(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", a.Table().Format())
	t.Logf("F12a crossover: %d (paper ~150)", a.Crossover())
	if ob, on, ok := a.SpeedupAt(500); ok {
		t.Logf("F12a n=1000 speedups: %.1f over block, %.1f over naive (paper 3.7 / 4.5)", ob, on)
	}

	b, err := RunMatmulFigure(cm, Fig12bSweep(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", b.Table().Format())
	t.Logf("F12b crossover: %d (paper ~20)", b.Crossover())
	if ob, on, ok := b.SpeedupAt(500); ok {
		t.Logf("F12b n=1500 speedups: %.1f over block, %.1f over naive (paper 5.8 / 6.7)", ob, on)
	}
}
