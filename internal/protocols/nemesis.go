package protocols

import (
	"fmt"

	"messengers/internal/faults"
	"messengers/internal/sim"
)

// The nemesis catalog: named, targeted fault schedules for protocol runs.
// Each nemesis is a function of (seed, engine) so a seed sweep samples many
// distinct timings — leader crashes land at different phase boundaries,
// partitions cut different daemons — while any single (nemesis, seed,
// engine) triple replays identically.
//
// Two standing rules keep liveness meaningful (docs/FAULTS.md):
//   - every partition heals and every crash restarts: an unhealed cut
//     would stall retransmission forever and the run would never quiesce;
//   - only daemon 0 — the protocol's leader (Paxos proposer 0, the 2PC
//     coordinator, termination's GVT pacer) — is ever crashed. Acceptor,
//     participant, and worker node variables are the protocols' stable
//     storage; crashing them is the known-unsafe case (a Paxos acceptor
//     that forgets its promises), which the suite demonstrates separately
//     with a broken script, not with the nemesis.
const (
	NemesisNone        = "none"
	NemesisDrop        = "drop"
	NemesisPartition   = "partition"
	NemesisLeaderCrash = "leadercrash"
	NemesisStorm       = "storm"
)

// Nemeses is the catalog in sweep order.
var Nemeses = []string{NemesisNone, NemesisDrop, NemesisPartition, NemesisLeaderCrash, NemesisStorm}

// ChaosNemeses is the subset that actually injects faults (the acceptance
// matrix of cmd/mproto).
var ChaosNemeses = []string{NemesisDrop, NemesisPartition, NemesisLeaderCrash, NemesisStorm}

func mixNem(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NemesisPlan builds the named fault plan for one seeded run. daemons is
// the protocol's daemon count (partitions pick a victim from it). Real
// engines get stretched timings: heartbeat failure detection takes ~250ms
// of wall time where the sim's scheduled notices take 2ms of simulated
// time. Returns nil for NemesisNone.
func NemesisPlan(name string, seed uint64, daemons int, engine string) (*faults.Plan, error) {
	if name == NemesisNone {
		return nil, nil
	}
	ms := int64(sim.Millisecond)
	// Timing profile: base unit for fault windows.
	crashAt := (1 + int64(mixNem(seed)%12)) * ms // sim: 1..12ms, mid-protocol
	crashRestart := 10 * ms                      //
	partAt := (1 + int64(mixNem(seed+1)%8)) * ms //
	partHeal := partAt + 15*ms                   //
	stormAt, stormUntil := 2*ms, 14*ms           //
	delay := ms                                  //
	detect := 2 * ms                             //
	if engine == EngineReal {
		crashAt = (30 + int64(mixNem(seed)%10)*30) * ms // 30..300ms wall
		crashRestart = 600 * ms                         // after heartbeat detection
		partAt = (20 + int64(mixNem(seed+1)%8)*20) * ms //
		partHeal = partAt + 400*ms                      //
		stormAt, stormUntil = 30*ms, 300*ms             //
		delay = 2 * ms                                  //
		detect = 0                                      // heartbeats detect instead
	}
	p := &faults.Plan{Seed: seed, DetectDelay: detect}
	switch name {
	case NemesisDrop:
		p.Drop, p.Dup = 0.15, 0.05
		p.DelayProb, p.Delay = 0.10, delay
	case NemesisPartition:
		// Cut one daemon out of the network for a window; every other
		// seed's cut is asymmetric (outbound-only), exercising the one-way
		// fault the recovery layer must also survive.
		victim := int(mixNem(seed+2) % uint64(daemons))
		p.Partitions = []faults.Partition{{
			At: partAt, Heal: partHeal, Group: []int{victim}, OneWay: seed%2 == 1,
		}}
	case NemesisLeaderCrash:
		p.Crashes = []faults.Crash{{Daemon: 0, At: crashAt, RestartAfter: crashRestart}}
	case NemesisStorm:
		// A congestion burst: heavy loss, duplication, and latency inside
		// the window, clean outside it.
		p.Storms = []faults.Storm{{
			At: stormAt, Until: stormUntil, Drop: 0.5, Dup: 0.2, DelayProb: 0.3, Delay: delay,
		}}
	default:
		return nil, fmt.Errorf("protocols: unknown nemesis %q", name)
	}
	if err := p.Validate(daemons); err != nil {
		return nil, err
	}
	return p, nil
}
