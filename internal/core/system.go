package core

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"messengers/internal/bytecode"
	"messengers/internal/logical"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/value"
	"messengers/internal/vm"
	"messengers/internal/wire"
)

// defaultGVTInterval is the period of the conservative GVT synchronization
// rounds — the paper's "continuous periodic exchange of timing information
// among all participating daemons", which it notes "results in a
// significant communication overhead". A paper-era daemon polling period.
const defaultGVTInterval = 25 * sim.Millisecond

// System owns a set of daemons on one engine: the script registry, native
// functions, injection, output collection, and liveness tracking.
type System struct {
	eng         Engine
	topo        *Topology
	daemons     []*Daemon
	natives     map[string]NativeFunc
	programs    map[string]*bytecode.Program
	gvtInterval sim.Time
	trace       *obs.Tracer
	metrics     *obs.Metrics
	om          *sysObs
	recCfg      *RecoveryConfig // non-nil enables fault recovery (WithRecovery)
	gate        Gate            // admission gate (SetAdmission); nil outside service mode
	distGVT     bool            // ring-reduction GVT instead of the coordinator
	hopBatch    bool            // coalesce same-destination hops into MsgBatch frames

	// live and injectSeq are atomics, not s.mu fields: every remote hop
	// under recovery and every inject touches them, and on the real engines
	// those arrive from many executors at once — they must not serialize on
	// the mutex that guards output collection. s.mu + cond only mediate the
	// zero-crossing that Wait sleeps on.
	live      atomic.Int64
	injectSeq atomic.Uint64

	mu      sync.Mutex
	cond    *sync.Cond
	outputs []string
	outW      io.Writer
	errs      []error
	// commits is daemon 0's strictly increasing sequence of installed GVT
	// values — the differential-testing signal that the coordinator and the
	// ring compute the same virtual-time history.
	commits []float64
}

// Option configures a System.
type Option func(*System)

// WithOutput mirrors script print output to w as it happens.
func WithOutput(w io.Writer) Option {
	return func(s *System) { s.outW = w }
}

// WithGVTInterval overrides the conservative synchronizer's round period.
func WithGVTInterval(d sim.Time) Option {
	return func(s *System) { s.gvtInterval = d }
}

// WithDistributedGVT replaces the centralized GVT coordinator (star-shaped
// query/report/advance rounds through daemon 0) with the distributed
// ring-reduction protocol: a token circulates the daemon ring accumulating
// the global minimum and transient counters, then circulates again to
// commit — two control messages per daemon per round, none of them
// converging on a single host. Commit semantics (advanceGVT, recovery
// fossil floors) are identical; see docs/GVT.md for the trade-offs.
func WithDistributedGVT() Option {
	return func(s *System) { s.distGVT = true }
}

// WithHopBatching coalesces the Messenger-carrying messages a daemon emits
// in one executor turn, per destination, into a single MsgBatch frame: a
// fan-out hop to k co-located destinations pays one frame header and one
// per-message fixed cost instead of k. The receiver unpacks and handles
// each member exactly as if it had arrived alone (GVT transient counting,
// reliable-delivery dedup, and admission charging are all per member).
// Off by default: the paper-calibration experiments model the 1997 runtime,
// which shipped hops one message at a time.
func WithHopBatching() Option {
	return func(s *System) { s.hopBatch = true }
}

// WithTracer attaches a tracer: daemons emit messenger-lifecycle, VM
// segment/native, and GVT events onto it, one track per daemon. A nil
// tracer (the default) costs one untaken branch per emission site.
func WithTracer(t *obs.Tracer) Option {
	return func(s *System) { s.trace = t }
}

// WithMetrics attaches a metrics registry: daemons count every lifecycle
// transition, hop, network send, and executed opcode into it (the registry
// is the single source of truth the bench harness reads).
func WithMetrics(m *obs.Metrics) Option {
	return func(s *System) { s.metrics = m }
}

// sysObs caches the registry instruments the daemons update on hot paths;
// nil when no registry is attached (one branch disables everything).
type sysObs struct {
	injected, arrived, segments, steps     *obs.Counter
	localHops, remoteHops, zeroCopyHops    *obs.Counter
	creates, deletes, finished, died, errs *obs.Counter
	evicted                                *obs.Counter
	suspends, gvtRounds                    *obs.Counter
	gvtTokenHops, gvtCommits, gvtCtlMsgs   *obs.Counter
	netMsgs, netBytes, netBatches          *obs.Counter
	retx, dedup, respawns, adoptions       *obs.Counter
	deaths, restarts, peerDowns, peerUps   *obs.Counter
	dispThreaded, dispSwitch, fusedSteps   *obs.Counter
	segSteps, msgrBytes, arenaBytes        *obs.Histogram
}

func newSysObs(m *obs.Metrics) *sysObs {
	return &sysObs{
		injected:   m.Counter("msgr.injected"),
		arrived:    m.Counter("msgr.arrived"),
		segments:   m.Counter("vm.segments"),
		steps:      m.Counter("vm.steps"),
		localHops:  m.Counter("msgr.hops.local"),
		remoteHops: m.Counter("msgr.hops.remote"),
		// zeroCopyHops counts remote hops whose Messenger state travelled
		// by in-process ownership transfer (no serialization at all).
		zeroCopyHops: m.Counter("msgr.hops.zerocopy"),
		creates:      m.Counter("msgr.creates"),
		deletes:      m.Counter("msgr.deletes"),
		finished:     m.Counter("msgr.finished"),
		died:         m.Counter("msgr.died"),
		errs:         m.Counter("msgr.errors"),
		evicted:      m.Counter("msgr.evicted"),
		suspends:     m.Counter("gvt.suspends"),
		gvtRounds:    m.Counter("gvt.rounds"),
		gvtTokenHops: m.Counter("gvt.token.hops"),
		gvtCommits:   m.Counter("gvt.commits"),
		gvtCtlMsgs:   m.Counter("gvt.ctl.msgs"),
		netMsgs:      m.Counter("net.msgs"),
		netBytes:     m.Counter("net.bytes"),
		netBatches:   m.Counter("net.batches"),
		retx:         m.Counter("msgr.retx"),
		dedup:        m.Counter("msgr.dedup"),
		respawns:     m.Counter("msgr.respawns"),
		adoptions:    m.Counter("logical.adoptions"),
		deaths:       m.Counter("daemon.deaths"),
		restarts:     m.Counter("daemon.restarts"),
		peerDowns:    m.Counter("net.peer.down"),
		peerUps:      m.Counter("net.peer.up"),
		// Dispatch-path accounting: source instructions executed on the
		// token-threaded fast path vs. the switch loop, and the subset
		// covered by fused superinstructions (see docs/VM.md).
		dispThreaded: m.Counter("vm.dispatch.threaded"),
		dispSwitch:   m.Counter("vm.dispatch.switch"),
		fusedSteps:   m.Counter("vm.fused.steps"),
		segSteps:     m.Histogram("vm.segment.steps"),
		msgrBytes:    m.Histogram("net.msgr.bytes"),
		arenaBytes:   m.Histogram("vm.arena.bytes"),
	}
}

// NewSystem creates one daemon per engine slot over the given daemon
// network topology.
func NewSystem(eng Engine, topo *Topology, opts ...Option) *System {
	if topo.NumDaemons() != eng.NumDaemons() {
		panic(fmt.Sprintf("core: topology has %d daemons, engine has %d",
			topo.NumDaemons(), eng.NumDaemons()))
	}
	s := &System{
		eng:         eng,
		topo:        topo,
		natives:     map[string]NativeFunc{},
		programs:    map[string]*bytecode.Program{},
		gvtInterval: defaultGVTInterval,
	}
	s.cond = sync.NewCond(&s.mu)
	for _, opt := range opts {
		opt(s)
	}
	if s.metrics != nil {
		s.om = newSysObs(s.metrics)
	}
	for i := 0; i < eng.NumDaemons(); i++ {
		s.trace.NameTrack(i, fmt.Sprintf("daemon %d", i))
	}
	s.daemons = make([]*Daemon, eng.NumDaemons())
	for i := range s.daemons {
		s.daemons[i] = newDaemon(i, eng, topo, s)
	}
	if b, ok := eng.(binder); ok {
		b.Bind(s.daemons)
	}
	s.registerSystemNatives()
	return s
}

// registerSystemNatives installs the natives every system provides:
// inject(script[, node]) releases a new Messenger of a registered script
// into the local daemon (the paper's "injected ... by another Messenger").
// Extra arguments are name/value pairs that become the new Messenger's
// initial variables: inject("worker", "init", "limit", 10).
func (s *System) registerSystemNatives() {
	s.natives["inject"] = func(ctx *NativeCtx, args []value.Value) (value.Value, error) {
		if len(args) == 0 || args[0].Kind() != value.KindStr {
			return value.Nil(), fmt.Errorf("inject needs a script name")
		}
		script := args[0].AsStr()
		node := logical.InitName
		rest := args[1:]
		if len(rest) > 0 && rest[0].Kind() == value.KindStr && len(rest)%2 == 1 {
			node = rest[0].AsStr()
			rest = rest[1:]
		}
		if len(rest)%2 != 0 {
			return value.Nil(), fmt.Errorf("inject variables must be name/value pairs")
		}
		vars := make(map[string]value.Value, len(rest)/2)
		for i := 0; i < len(rest); i += 2 {
			if rest[i].Kind() != value.KindStr {
				return value.Nil(), fmt.Errorf("inject variable name must be a string, got %v", rest[i].Kind())
			}
			vars[rest[i].AsStr()] = rest[i+1]
		}
		// The child inherits its parent's local virtual time (it cannot
		// observe or schedule anything before its creation) and its
		// parent's tenant/session, so script-spawned children stay inside
		// the session's quota instead of escaping the books.
		if err := s.injectAt(ctx.DaemonID(), script, node, vars, ctx.LVT(),
			ctx.m.Tenant, ctx.m.Session, 0); err != nil {
			return value.Nil(), err
		}
		return value.Nil(), nil
	}
}

// Engine returns the engine driving this system.
func (s *System) Engine() Engine { return s.eng }

// Tracer returns the attached tracer (nil when tracing is off).
func (s *System) Tracer() *obs.Tracer { return s.trace }

// Metrics returns the attached metrics registry (nil when off).
func (s *System) Metrics() *obs.Metrics { return s.metrics }

// FlushVMProfiles folds each daemon's per-opcode interpreter profile into
// the metrics registry as vm.op.<mnemonic> counters. Call post-run (daemon
// profiles are executor-confined during a run); flushing zeroes the
// per-daemon counts so repeated calls never double-count.
func (s *System) FlushVMProfiles() {
	if s.metrics == nil {
		return
	}
	for _, d := range s.daemons {
		if d.prof == nil {
			continue
		}
		for op, n := range d.prof.Counts {
			if n > 0 {
				//lint:obsname one name per opcode mnemonic, a closed set
				s.metrics.Counter("vm.op." + vm.OpName(op)).Add(n)
				d.prof.Counts[op] = 0
			}
		}
	}
	s.publishWireStats()
}

// publishWireStats copies the process-wide wire pool counters into the
// registry as wire.* gauges. Gauges, not counters: the totals are monotonic
// and process-wide, so repeated flushes overwrite instead of double-count.
func (s *System) publishWireStats() {
	st := wire.ReadStats()
	s.metrics.Gauge("wire.pool.gets").Set(st.PoolGets)
	s.metrics.Gauge("wire.pool.hits").Set(st.PoolHits)
	s.metrics.Gauge("wire.pool.misses").Set(st.PoolMisses)
	s.metrics.Gauge("wire.bytes.encoded").Set(st.BytesEncoded)
}

// Daemon returns daemon i for post-run inspection. During a run its state
// must only be touched from its executor (use Do).
func (s *System) Daemon(i int) *Daemon { return s.daemons[i] }

// NumDaemons returns the daemon count.
func (s *System) NumDaemons() int { return len(s.daemons) }

// Do runs fn with daemon d on its executor (asynchronously).
func (s *System) Do(d int, fn func(*Daemon)) {
	s.eng.Exec(d, 0, func() { fn(s.daemons[d]) })
}

// RegisterNative makes a native-mode function available to all daemons.
// Must be called before any Messenger is injected.
func (s *System) RegisterNative(name string, fn NativeFunc) {
	s.natives[name] = fn
}

// Register installs a compiled script in every daemon's registry (the
// shared-file-system model of the paper: code is loaded by name everywhere
// and never carried by Messengers).
func (s *System) Register(p *bytecode.Program) {
	s.programs[p.Name] = p
	for i := range s.daemons {
		d := s.daemons[i]
		s.eng.Exec(i, 0, func() { d.register(p) })
	}
}

// Program returns a registered program by name.
func (s *System) Program(name string) (*bytecode.Program, bool) {
	p, ok := s.programs[name]
	return p, ok
}

// Inject releases a new Messenger of the named script into daemon d's init
// node, with optional initial Messenger variables — the paper's "any
// Messenger may be injected (from the shell or by another Messenger) into
// any of the init nodes".
func (s *System) Inject(d int, script string, vars map[string]value.Value) error {
	return s.InjectAt(d, script, logical.InitName, vars)
}

// InjectAt injects at a named logical node of daemon d (first node with
// that name; init when absent).
func (s *System) InjectAt(d int, script, node string, vars map[string]value.Value) error {
	return s.injectAt(d, script, node, vars, 0, "", 0, 0)
}

func (s *System) injectAt(d int, script, node string, vars map[string]value.Value,
	lvt float64, tenant string, session uint64, budget int64) error {
	prog, ok := s.programs[script]
	if !ok {
		return fmt.Errorf("core: script %q not registered", script)
	}
	return s.injectProg(d, prog, node, vars, lvt, tenant, session, budget)
}

func (s *System) injectProg(d int, prog *bytecode.Program, node string, vars map[string]value.Value,
	lvt float64, tenant string, session uint64, budget int64) error {
	if d < 0 || d >= len(s.daemons) {
		return fmt.Errorf("core: no daemon %d", d)
	}
	fresh := vm.New(prog, value.CloneEnv(vars))
	seq := s.injectSeq.Add(1)
	msg := &Msg{
		Kind:       MsgInject,
		From:       d,
		ProgHash:   prog.Hash(),
		XferVM:     fresh,
		MsgrID:     1<<63 | seq, // top bit marks injected Messengers
		LVT:        lvt,
		CreateName: node,
		Tenant:     tenant,
		Session:    session,
		Budget:     budget,
	}
	s.sessionWork(tenant, session, 1)
	dae := s.daemons[d]
	s.eng.Exec(d, 0, func() { dae.HandleMsg(msg) })
	return nil
}

// --- liveness tracking ---

func (s *System) workAdded(n int) {
	if n == 0 {
		return
	}
	s.live.Add(int64(n))
}

func (s *System) workDone(n int) {
	v := s.live.Add(-int64(n))
	if v < 0 {
		panic("core: live work count went negative")
	}
	if v == 0 {
		// Broadcast under s.mu so a concurrent Wait cannot check the count
		// and sleep between our decrement and the signal.
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// Live returns the number of live Messengers plus in-flight transfers.
func (s *System) Live() int64 { return s.live.Load() }

// Wait blocks until no live Messengers or in-flight transfers remain (real
// engines; on the simulated engine run the kernel instead).
func (s *System) Wait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.live.Load() > 0 {
		s.cond.Wait()
	}
}

// --- output and errors ---

func (s *System) print(daemon int, line string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.outputs = append(s.outputs, line)
	if s.outW != nil {
		fmt.Fprintf(s.outW, "[d%d] %s\n", daemon, line)
	}
}

// Output returns all print output so far.
func (s *System) Output() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.outputs))
	copy(out, s.outputs)
	return out
}

func (s *System) recordError(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errs = append(s.errs, err)
}

// Errors returns runtime errors that destroyed Messengers.
func (s *System) Errors() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]error, len(s.errs))
	copy(out, s.errs)
	return out
}

// recordCommit logs a GVT value installed on daemon 0. advanceGVT already
// guarantees strict monotonicity, so the log is the sequence of distinct
// global-virtual-time frontiers the run committed.
func (s *System) recordCommit(gvt float64) {
	s.mu.Lock()
	s.commits = append(s.commits, gvt)
	s.mu.Unlock()
}

// CommitLog returns daemon 0's strictly increasing sequence of committed
// GVT values. Both GVT implementations feed it through the same advanceGVT
// path, so differential tests can assert the coordinator and the ring
// agree on the entire virtual-time history of a run.
func (s *System) CommitLog() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.commits))
	copy(out, s.commits)
	return out
}

// TotalStats aggregates daemon statistics (post-run).
func (s *System) TotalStats() Stats {
	var t Stats
	for _, d := range s.daemons {
		t.Arrived += d.Stats.Arrived
		t.Segments += d.Stats.Segments
		t.Steps += d.Stats.Steps
		t.LocalHops += d.Stats.LocalHops
		t.RemoteHops += d.Stats.RemoteHops
		t.Creates += d.Stats.Creates
		t.Deletes += d.Stats.Deletes
		t.Finished += d.Stats.Finished
		t.Died += d.Stats.Died
		t.Errors += d.Stats.Errors
		t.Evicted += d.Stats.Evicted
		t.GVTRounds += d.Stats.GVTRounds
		t.Suspends += d.Stats.Suspends
	}
	return t
}

// --- net_builder service ---

// NetNode declares one logical node of a static network.
type NetNode struct {
	Name   string
	Daemon int
}

// NetLink declares a link between two declared nodes. Dir 0 is undirected,
// 1 directs A -> B, 2 directs B -> A.
type NetLink struct {
	A, B string
	Name string
	Dir  uint8
}

// NetSpec is a static logical-network description, the input to the
// net_builder service (the paper's tool that reads a topology file and
// creates the corresponding logical network).
type NetSpec struct {
	Nodes []NetNode
	Links []NetLink
}

// BuildNetwork constructs the described logical network directly in the
// daemons' stores. It must be called while the system is quiescent (before
// any Messenger is injected), which is how the paper's net_builder is used
// to lay down the application's static "exogenous skeleton".
func (s *System) BuildNetwork(spec NetSpec) error {
	byName := make(map[string]struct {
		d *Daemon
		n *logical.Node
	}, len(spec.Nodes))
	for _, nn := range spec.Nodes {
		if nn.Daemon < 0 || nn.Daemon >= len(s.daemons) {
			return fmt.Errorf("core: net node %q on unknown daemon %d", nn.Name, nn.Daemon)
		}
		if _, dup := byName[nn.Name]; dup {
			return fmt.Errorf("core: duplicate net node name %q", nn.Name)
		}
		d := s.daemons[nn.Daemon]
		byName[nn.Name] = struct {
			d *Daemon
			n *logical.Node
		}{d, d.store.CreateNode(nn.Name)}
	}
	for _, l := range spec.Links {
		a, okA := byName[l.A]
		b, okB := byName[l.B]
		if !okA || !okB {
			return fmt.Errorf("core: link %q references unknown node (%q - %q)", l.Name, l.A, l.B)
		}
		id := a.d.store.NewLinkID()
		directed := l.Dir != 0
		a.d.store.AttachHalf(a.n, id, l.Name, directed, l.Dir == 1, b.d.store.Addr(b.n), b.n.Name)
		b.d.store.AttachHalf(b.n, id, l.Name, directed, l.Dir == 2, a.d.store.Addr(a.n), a.n.Name)
	}
	return nil
}

// ReadNodeVars returns a deep copy of a named node's variables (post-run
// inspection).
func (s *System) ReadNodeVars(daemon int, nodeName string) (map[string]value.Value, bool) {
	nodes := s.daemons[daemon].store.FindByName(nodeName)
	if len(nodes) == 0 {
		return nil, false
	}
	return value.CloneEnv(nodes[0].Vars), true
}

// --- conservative GVT coordinator (runs on daemon 0) ---

// coordinator implements the paper's conservative global-virtual-time
// strategy: periodic rounds that collect each daemon's local minimum and
// send/receive counters; when the counters balance (no transient
// Messengers) the minimum is a safe new GVT.
type coordinator struct {
	d       *Daemon
	polling bool
	epoch   int64
	reports map[int]*Msg
	// wdBackoff is the current watchdog delay; it doubles every time a
	// round stalls and resets when one concludes, so a partitioned daemon
	// costs a geometrically thinning trickle of re-queries instead of a
	// steady storm.
	wdBackoff sim.Time
	roundFrom sim.Time // engine clock at round launch (latency accounting)
}

func (c *coordinator) handle(msg *Msg) {
	switch msg.Kind {
	case MsgGVTNotify:
		if !c.polling {
			c.polling = true
			c.startRound()
		}
	case MsgGVTReport:
		if msg.GEpoch != c.epoch || c.reports == nil {
			return
		}
		c.reports[msg.From] = msg
		if len(c.reports) >= c.expect() {
			c.conclude()
		}
	}
}

// expect is the number of reports that concludes a round: every daemon the
// coordinator does not currently believe dead.
func (c *coordinator) expect() int {
	n := c.d.eng.NumDaemons()
	if c.d.rec == nil {
		return n
	}
	for _, dead := range c.d.rec.peerDead {
		if dead {
			n--
		}
	}
	return n
}

// alive reports whether the coordinator should include daemon i in a round.
func (c *coordinator) alive(i int) bool {
	return c.d.rec == nil || i == c.d.id || !c.d.rec.peerDead[i]
}

func (c *coordinator) startRound() {
	c.epoch++
	c.d.Stats.GVTRounds++
	c.roundFrom = c.d.eng.Now()
	if c.d.om != nil {
		c.d.om.gvtRounds.Inc()
	}
	if c.d.tr != nil {
		c.d.tr.Instant(c.d.id, "gvt", "gvt.round", obs.I("epoch", c.epoch))
	}
	c.reports = make(map[int]*Msg, c.d.eng.NumDaemons())
	for i := 0; i < c.d.eng.NumDaemons(); i++ {
		if !c.alive(i) {
			continue
		}
		c.d.sendGVT(i, &Msg{Kind: MsgGVTQuery, From: c.d.id, GEpoch: c.epoch})
	}
	c.armWatchdog()
}

// armWatchdog restarts a round that stalls — a query or report lost to the
// network, or a peer that died mid-round — so GVT synchronization survives
// message loss. Recovery mode only: fault-free runs must stay
// event-identical. The delay backs off exponentially (2× the round
// interval up to gvtMaxBackoff×) so a long partition does not generate a
// query storm against the unreachable daemon.
func (c *coordinator) armWatchdog() {
	if c.d.rec == nil {
		return
	}
	c.wdBackoff = nextBackoff(c.wdBackoff, c.d.sys.gvtInterval)
	ep := c.epoch
	c.d.safeTimer(c.wdBackoff, func() {
		if c.epoch == ep && c.reports != nil {
			c.startRound()
		}
	})
}

// gvtMaxBackoff caps the stalled-round watchdog at 64× the base delay.
const gvtMaxBackoff = 64

// nextBackoff doubles a watchdog delay from a 2×interval floor, capped at
// gvtMaxBackoff times the floor.
func nextBackoff(cur, interval sim.Time) sim.Time {
	floor := 2 * interval
	if cur < floor {
		return floor
	}
	next := cur * 2
	if max := gvtMaxBackoff * floor; next > max {
		return max
	}
	return next
}

func (c *coordinator) conclude() {
	var sent, recv int64
	min := math.Inf(1)
	ids := make([]int, 0, len(c.reports))
	//lint:maporder keys are collected then sorted before use
	for id := range c.reports {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := c.reports[id]
		sent += r.GSent
		recv += r.GRecv
		if r.GMin < min {
			min = r.GMin
		}
	}
	c.reports = nil
	c.wdBackoff = 0 // the round concluded; stalls start fresh
	c.d.Stats.GVTRoundTime += c.d.eng.Now() - c.roundFrom
	interval := c.d.sys.gvtInterval
	if sent != recv {
		// Transient Messengers in flight: retry soon.
		c.d.eng.SetTimer(c.d.id, interval/4+1, func() { c.startRound() })
		return
	}
	if math.IsInf(min, 1) {
		// Nothing is suspended anywhere; stop polling until the next
		// notification.
		c.polling = false
		return
	}
	// Recovery mode re-broadcasts even when the minimum stands still: a
	// daemon that lost an earlier MsgGVTAdvance would otherwise stay wedged
	// at the old GVT forever.
	if min > c.d.gvt || (c.d.rec != nil && min >= c.d.gvt) {
		for i := 0; i < c.d.eng.NumDaemons(); i++ {
			if !c.alive(i) {
				continue
			}
			c.d.sendGVT(i, &Msg{Kind: MsgGVTAdvance, From: c.d.id, GVT: min})
		}
	}
	c.d.eng.SetTimer(c.d.id, interval, func() { c.startRound() })
}
