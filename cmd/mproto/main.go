// mproto is the protocol chaos suite: single-decree Paxos, two-phase
// commit, and ring termination detection, each implemented both as MSL
// Messenger programs on the real VM and as PVM-style message-passing
// baselines, swept across seeded nemesis fault plans with every run's
// event trace checked against the protocol's safety invariants.
//
//	go run ./cmd/mproto                          # sim engine, 32 seeds, full matrix
//	go run ./cmd/mproto -short                   # 6 seeds
//	go run ./cmd/mproto -engines sim,real -seeds 2
//	go run ./cmd/mproto -protocols paxos -nemeses leadercrash -seeds 64
//	go run ./cmd/mproto -broken                  # prove the checker catches a bad acceptor
//
// Exit status: 0 if every run satisfied its invariants (and reached a
// decision wherever the nemesis does not excuse one), 1 on any safety
// violation or unexcused missed decision, 2 on harness error. The cost
// comparison (Messenger hops/bytes versus PVM message/bytes) is written to
// -out as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"messengers/internal/protocols"
)

func main() {
	engines := flag.String("engines", "sim", "comma-separated engines: sim, real")
	protos := flag.String("protocols", strings.Join(protocols.Protocols, ","), "comma-separated protocols")
	impls := flag.String("impls", strings.Join(protocols.Impls, ","), "comma-separated implementations: msgr, pvm")
	nemeses := flag.String("nemeses", strings.Join(protocols.Nemeses, ","), "comma-separated nemeses")
	seeds := flag.Int("seeds", 32, "seeds per (protocol, impl, engine, nemesis) cell")
	seedBase := flag.Uint64("seed-base", 1, "first seed value")
	short := flag.Bool("short", false, "quick matrix (6 seeds)")
	workers := flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
	out := flag.String("out", "BENCH_protocols.json", "cost/benchmark JSON output path (empty = none)")
	broken := flag.Bool("broken", false, "run the deliberately broken Paxos acceptor instead; exit 0 iff the checker catches it")
	verbose := flag.Bool("v", false, "print every run, not just failures")
	flag.Parse()

	if *short {
		*seeds = 6
	}
	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = *seedBase + uint64(i)
	}

	if *broken {
		os.Exit(runBroken(seedList))
	}

	var all []protocols.Result
	for _, engine := range split(*engines) {
		results, err := protocols.Sweep(protocols.SweepConfig{
			Engine:    engine,
			Protocols: split(*protos),
			Impls:     split(*impls),
			Nemeses:   split(*nemeses),
			Seeds:     seedList,
			Workers:   *workers,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mproto: %v\n", err)
			os.Exit(2)
		}
		all = append(all, results...)
	}

	failures := 0
	for _, res := range all {
		if res.Failed() {
			failures++
			fmt.Printf("FAIL %-5s %-4s %-4s %-11s seed %-3d decided=%-5v expected=%-5v err=%q\n",
				res.Config.Protocol, res.Config.Impl, res.Config.Engine, res.Config.Nemesis,
				res.Config.Seed, res.Decided, res.Expected, res.Err)
			for _, v := range res.Violations {
				fmt.Printf("     violation %s\n", v)
			}
		} else if *verbose {
			fmt.Printf("ok   %-5s %-4s %-4s %-11s seed %-3d decided=%v hops=%d bytes=%d\n",
				res.Config.Protocol, res.Config.Impl, res.Config.Engine, res.Config.Nemesis,
				res.Config.Seed, res.Decided, res.Cost.Hops, res.Cost.Bytes)
		}
	}

	if *out != "" {
		if err := writeBench(*out, seedList, all); err != nil {
			fmt.Fprintf(os.Stderr, "mproto: %v\n", err)
			os.Exit(2)
		}
	}

	fmt.Printf("mproto: %d runs, %d failures (%s; %d seeds)\n",
		len(all), failures, *engines, len(seedList))
	if failures > 0 {
		os.Exit(1)
	}
}

// runBroken sweeps the promise-forgetting Paxos acceptor and inverts the
// verdict: the suite is healthy only if the checker flags a majority of
// seeds.
func runBroken(seeds []uint64) int {
	caught := 0
	for _, seed := range seeds {
		res, err := protocols.Run(protocols.RunConfig{
			Protocol: protocols.ProtoPaxos, Impl: protocols.ImplMessengers,
			Engine: protocols.EngineSim, Nemesis: protocols.NemesisNone,
			Seed: seed, Broken: true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mproto: %v\n", err)
			return 2
		}
		if len(res.Violations) > 0 {
			caught++
			if len(res.Violations) > 0 {
				fmt.Printf("seed %d: caught (%s)\n", seed, res.Violations[0])
			}
		} else {
			fmt.Printf("seed %d: NOT caught\n", seed)
		}
	}
	fmt.Printf("mproto: broken acceptor caught on %d/%d seeds\n", caught, len(seeds))
	if caught <= len(seeds)/2 {
		fmt.Println("mproto: checker failed to catch the broken acceptor")
		return 1
	}
	return 0
}

func split(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// benchCell aggregates the runs of one (protocol, impl, engine, nemesis)
// cell of the matrix.
type benchCell struct {
	Protocol   string  `json:"protocol"`
	Impl       string  `json:"impl"`
	Engine     string  `json:"engine"`
	Nemesis    string  `json:"nemesis"`
	Runs       int     `json:"runs"`
	Decided    int     `json:"decided"`
	Violations int     `json:"violations"`
	AvgHops    float64 `json:"avg_hops"`
	AvgBytes   float64 `json:"avg_bytes"`
	AvgNetMsgs float64 `json:"avg_net_msgs"`
	AvgNetB    float64 `json:"avg_net_bytes"`
}

// benchCompare is the headline messages-versus-messengers number: protocol
// traffic cost of the Messenger implementation relative to the PVM
// baseline, from fault-free runs.
type benchCompare struct {
	Protocol  string  `json:"protocol"`
	Engine    string  `json:"engine"`
	MsgrHops  float64 `json:"msgr_hops"`
	PVMMsgs   float64 `json:"pvm_msgs"`
	MsgrBytes float64 `json:"msgr_bytes"`
	PVMBytes  float64 `json:"pvm_bytes"`
	HopRatio  float64 `json:"hop_ratio"`  // msgr hops / pvm msgs
	ByteRatio float64 `json:"byte_ratio"` // msgr bytes / pvm bytes
}

type benchFile struct {
	Suite      string         `json:"suite"`
	Seeds      int            `json:"seeds"`
	Cells      []benchCell    `json:"cells"`
	Comparison []benchCompare `json:"comparison"`
}

func writeBench(path string, seeds []uint64, all []protocols.Result) error {
	type key struct{ proto, impl, engine, nemesis string }
	cells := map[key]*benchCell{}
	var order []key
	for _, res := range all {
		k := key{res.Config.Protocol, res.Config.Impl, res.Config.Engine, res.Config.Nemesis}
		c, ok := cells[k]
		if !ok {
			c = &benchCell{Protocol: k.proto, Impl: k.impl, Engine: k.engine, Nemesis: k.nemesis}
			cells[k] = c
			order = append(order, k)
		}
		c.Runs++
		if res.Decided {
			c.Decided++
		}
		c.Violations += len(res.Violations)
		c.AvgHops += float64(res.Cost.Hops)
		c.AvgBytes += float64(res.Cost.Bytes)
		c.AvgNetMsgs += float64(res.Cost.NetMsgs)
		c.AvgNetB += float64(res.Cost.NetBytes)
	}
	f := benchFile{Suite: "protocols", Seeds: len(seeds)}
	for _, k := range order {
		c := cells[k]
		n := float64(c.Runs)
		c.AvgHops /= n
		c.AvgBytes /= n
		c.AvgNetMsgs /= n
		c.AvgNetB /= n
		f.Cells = append(f.Cells, *c)
	}
	for _, k := range order {
		if k.impl != protocols.ImplMessengers || k.nemesis != protocols.NemesisNone {
			continue
		}
		msgr := cells[k]
		pvm, ok := cells[key{k.proto, protocols.ImplPVM, k.engine, k.nemesis}]
		if !ok {
			continue
		}
		cmp := benchCompare{
			Protocol: k.proto, Engine: k.engine,
			MsgrHops: msgr.AvgHops, PVMMsgs: pvm.AvgHops,
			MsgrBytes: msgr.AvgBytes, PVMBytes: pvm.AvgBytes,
		}
		if pvm.AvgHops > 0 {
			cmp.HopRatio = msgr.AvgHops / pvm.AvgHops
		}
		if pvm.AvgBytes > 0 {
			cmp.ByteRatio = msgr.AvgBytes / pvm.AvgBytes
		}
		f.Comparison = append(f.Comparison, cmp)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
