package pvm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"messengers/internal/lan"
	"messengers/internal/sim"
	"messengers/internal/value"
	"messengers/internal/wire"
)

// Buffer is a PVM message buffer. Packing copies data in at the sender;
// unpacking copies it out at the receiver — the two explicit copies the
// paper contrasts with MESSENGERS' direct state transfer (§2.1). In
// simulation each copy is charged at the corresponding per-byte rate
// (chargeCopy): the modeled cost is independent of whether this
// implementation physically pays it, so pooling the backing storage below
// does not change any figure.
type Buffer struct {
	data []byte
	pos  int
	src  TID
	tag  int
	// refs counts live references to pooled backing storage — Mcast shares
	// one data slice across every destination's Buffer — and is nil for
	// unpooled buffers. The last release recycles data into the wire pool.
	refs *atomic.Int32
}

// release drops this buffer's claim on pooled storage, recycling it once no
// other reference remains. Unpacking from the buffer afterwards panics
// (message end), mirroring PVM's freed-receive-buffer behavior.
func (b *Buffer) release() {
	if b == nil || b.refs == nil {
		return
	}
	if b.refs.Add(-1) == 0 {
		wire.PutBuf(b.data)
	}
	b.refs = nil
	b.data = nil
}

// newSendBuf draws a pack buffer from the wire pool, holding one reference.
func newSendBuf() *Buffer {
	b := &Buffer{data: wire.GetBuf(), refs: new(atomic.Int32)}
	b.refs.Store(1)
	return b
}

// Sender returns the sending task (after Recv).
func (b *Buffer) Sender() TID { return b.src }

// Tag returns the message tag (after Recv).
func (b *Buffer) Tag() int { return b.tag }

// Len returns the packed payload size in bytes.
func (b *Buffer) Len() int { return len(b.data) }

// InitSend clears the task's send buffer (pvm_initsend), recycling any
// packed-but-unsent storage.
func (p *Proc) InitSend() {
	p.checkKilled()
	p.sendBuf.release()
	p.sendBuf = newSendBuf()
}

func (p *Proc) send() *Buffer {
	if p.sendBuf == nil {
		p.sendBuf = newSendBuf()
	}
	return p.sendBuf
}

// chargeCopy charges a user-level copy of n bytes and accounts it to the
// pack or unpack byte counter when metrics are attached.
func (p *Proc) chargeCopy(n int, perByte func(cm *lan.CostModel) sim.Time, unpack bool) {
	if mo := p.m.mo; mo != nil && n > 0 {
		if unpack {
			mo.unpackBytes.Add(int64(n))
		} else {
			mo.packBytes.Add(int64(n))
		}
	}
	if p.m.Sim() && n > 0 {
		p.Compute(sim.Time(n) * perByte(p.m.cm))
	}
}

// PkInt packs int64s (pvm_pkint).
func (p *Proc) PkInt(vs ...int64) {
	p.checkKilled()
	b := p.send()
	for _, v := range vs {
		b.data = binary.LittleEndian.AppendUint64(b.data, uint64(v))
	}
	p.chargeCopy(8*len(vs), func(cm *lan.CostModel) sim.Time { return cm.PVMPackPerByte }, false)
}

// PkDouble packs float64s (pvm_pkdouble).
func (p *Proc) PkDouble(vs ...float64) {
	p.checkKilled()
	b := p.send()
	for _, v := range vs {
		b.data = binary.LittleEndian.AppendUint64(b.data, math.Float64bits(v))
	}
	p.chargeCopy(8*len(vs), func(cm *lan.CostModel) sim.Time { return cm.PVMPackPerByte }, false)
}

// PkBytes packs a byte block (pvm_pkbyte).
func (p *Proc) PkBytes(bs []byte) {
	p.checkKilled()
	b := p.send()
	b.data = binary.LittleEndian.AppendUint32(b.data, uint32(len(bs)))
	b.data = append(b.data, bs...)
	p.chargeCopy(len(bs), func(cm *lan.CostModel) sim.Time { return cm.PVMPackPerByte }, false)
}

// PkStr packs a string (pvm_pkstr).
func (p *Proc) PkStr(s string) { p.PkBytes([]byte(s)) }

// PkMat packs a matrix as dims plus row-major float64 data.
func (p *Proc) PkMat(m *value.Mat) {
	p.checkKilled()
	b := p.send()
	b.data = binary.LittleEndian.AppendUint32(b.data, uint32(m.Rows))
	b.data = binary.LittleEndian.AppendUint32(b.data, uint32(m.Cols))
	for _, f := range m.Data {
		b.data = binary.LittleEndian.AppendUint64(b.data, math.Float64bits(f))
	}
	p.chargeCopy(8*len(m.Data), func(cm *lan.CostModel) sim.Time { return cm.PVMPackPerByte }, false)
}

// unpack helpers; PVM's upk calls abort the task on type/size mismatch,
// which we model with panics recorded by the machine.

func (p *Proc) upkN(b *Buffer, n int) []byte {
	if b.pos+n > len(b.data) {
		panic(fmt.Sprintf("pvm: unpack of %d bytes beyond message end (%d/%d)", n, b.pos, len(b.data)))
	}
	out := b.data[b.pos : b.pos+n]
	b.pos += n
	return out
}

// UpkInt unpacks one int64.
func (p *Proc) UpkInt(b *Buffer) int64 {
	v := int64(binary.LittleEndian.Uint64(p.upkN(b, 8)))
	p.chargeCopy(8, func(cm *lan.CostModel) sim.Time { return cm.PVMUnpackPerByte }, true)
	return v
}

// UpkDouble unpacks one float64.
func (p *Proc) UpkDouble(b *Buffer) float64 {
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.upkN(b, 8)))
	p.chargeCopy(8, func(cm *lan.CostModel) sim.Time { return cm.PVMUnpackPerByte }, true)
	return v
}

// UpkBytes unpacks a byte block (copying it out of the buffer).
func (p *Proc) UpkBytes(b *Buffer) []byte {
	n := int(binary.LittleEndian.Uint32(p.upkN(b, 4)))
	src := p.upkN(b, n)
	out := make([]byte, n)
	copy(out, src)
	p.chargeCopy(n, func(cm *lan.CostModel) sim.Time { return cm.PVMUnpackPerByte }, true)
	return out
}

// UpkStr unpacks a string.
func (p *Proc) UpkStr(b *Buffer) string { return string(p.UpkBytes(b)) }

// UpkMat unpacks a matrix.
func (p *Proc) UpkMat(b *Buffer) *value.Mat {
	rows := int(binary.LittleEndian.Uint32(p.upkN(b, 4)))
	cols := int(binary.LittleEndian.Uint32(p.upkN(b, 4)))
	if rows < 0 || cols < 0 || rows*cols > 1<<26 {
		panic(fmt.Sprintf("pvm: unpack matrix %dx%d", rows, cols))
	}
	m := value.NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(p.upkN(b, 8)))
	}
	p.chargeCopy(8*len(m.Data), func(cm *lan.CostModel) sim.Time { return cm.PVMUnpackPerByte }, true)
	return m
}
