// Package gvt implements the virtual-time layer of §2.2 as a stand-alone
// distributed-simulation kernel with both strategies the paper names:
//
//   - a conservative executor, which advances global virtual time by
//     periodic synchronization rounds among all hosts (safe, but paying the
//     "significant communication overhead" the paper attributes to it), and
//   - an optimistic executor in the style of Jefferson's Time Warp
//     [Jef85]: hosts process events eagerly, save state, detect stragglers,
//     roll back, and cancel with anti-messages; fossil collection advances
//     behind a periodically computed GVT.
//
// Both run the same application — timestamped events exchanged by logical
// processes (LPs) placed on hosts of the simulated cluster — and produce
// identical results; they differ in control traffic, rollbacks, and
// simulated completion time, which the A2 ablation benchmark compares.
//
// (The Messenger runtime itself, package core, uses the conservative
// strategy for its sched_abs/sched_dlt calls; this package isolates the
// synchronization algorithms so they can be studied head to head.)
package gvt

import (
	"fmt"
	"math"

	"messengers/internal/lan"
	"messengers/internal/obs"
	"messengers/internal/sim"
)

// State is an LP's snapshotable application state.
type State interface {
	// Clone returns a deep copy (saved before each optimistic event).
	Clone() State
}

// IntState is a ready-made State: a small named-counter map.
type IntState map[string]int64

// Clone implements State.
func (s IntState) Clone() State {
	c := make(IntState, len(s))
	//lint:maporder map copy is order-independent
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Event is a timestamped message between LPs.
type Event struct {
	// At is the virtual time the event executes at.
	At float64
	// To is the destination LP.
	To int
	// Kind and Data are application payload.
	Kind int
	Data int64
	// Size is the wire size charged for inter-host delivery.
	Size int
}

// Handler executes one event against an LP's state. It must be
// deterministic: optimistic re-execution after a rollback must reproduce
// identical behavior.
type Handler func(ctx *Ctx, ev Event)

// Ctx is the execution context passed to handlers.
type Ctx struct {
	lp     int
	now    float64
	state  State
	send   func(Event)
	charge *sim.Time
}

// LP returns the executing logical process ID.
func (c *Ctx) LP() int { return c.lp }

// Now returns the event's virtual time.
func (c *Ctx) Now() float64 { return c.now }

// State returns the LP's current state.
func (c *Ctx) State() State { return c.state }

// Send schedules a new event; ev.At must be strictly after Now (positive
// lookahead), as in classic PDES.
func (c *Ctx) Send(ev Event) {
	if ev.At <= c.now {
		panic(fmt.Sprintf("gvt: send into the past or present (%v <= %v)", ev.At, c.now))
	}
	c.send(ev)
}

// Charge adds modeled CPU cost for this event's execution.
func (c *Ctx) Charge(t sim.Time) { *c.charge += t }

// Config describes a virtual-time application.
type Config struct {
	Cluster *lan.Cluster
	// NumLPs is the logical-process count.
	NumLPs int
	// Place maps an LP to its host (default: lp % hosts).
	Place func(lp int) int
	// InitState builds each LP's initial state.
	InitState func(lp int) State
	// Handler executes events.
	Handler Handler
	// EventCPU is the fixed CPU cost per event execution (plus whatever
	// the handler charges).
	EventCPU sim.Time
	// SyncInterval is the GVT round period (conservative barriers /
	// optimistic fossil collection). Default 5 ms.
	SyncInterval sim.Time
	// Trace receives synchronization events when non-nil: rounds and epoch
	// advances on host 0's track, rollbacks and anti-messages on the track
	// of the host they occur on. Bind the tracer clock to the kernel (e.g.
	// via Cluster.Observe) for simulated-time timestamps.
	Trace *obs.Tracer
	// Window bounds optimism (Time Warp only): an LP may execute an event
	// only while its timestamp is below GVT + Window. 0 means unbounded
	// optimism, which on workloads with little lookahead can thrash in
	// cascading rollbacks (the paper's "domino effect"); a moving time
	// window is the classic mitigation.
	Window float64
	// FossilFloor, when non-nil, caps how far fossil collection may discard
	// history (Time Warp only): records at or above min(GVT, FossilFloor())
	// are retained even though GVT has passed them. Recovery layers use this
	// to keep state needed to re-execute work lost to injected faults.
	FossilFloor func() float64
}

func (c *Config) place(lp int) int {
	if c.Place != nil {
		return c.Place(lp)
	}
	return lp % len(c.Cluster.Hosts)
}

func (c *Config) syncInterval() sim.Time {
	if c.SyncInterval > 0 {
		return c.SyncInterval
	}
	return 5 * sim.Millisecond
}

// Stats summarizes a run.
type Stats struct {
	// Events is the number of committed event executions.
	Events int64
	// Rollbacks is the number of rollback episodes (optimistic only).
	Rollbacks int64
	// RolledBack is the number of event executions undone.
	RolledBack int64
	// AntiMessages is the number of cancellations sent.
	AntiMessages int64
	// ControlMsgs counts GVT/barrier control messages.
	ControlMsgs int64
	// Rounds counts synchronization rounds.
	Rounds int64
	// Elapsed is the simulated completion time.
	Elapsed sim.Time
	// FinalGVT is the final global virtual time.
	FinalGVT float64
}

// ctlMsgSize is the wire size of a GVT control message.
const ctlMsgSize = 64

// tsEvent is an event tagged with an insertion id for deterministic
// tie-breaking (and, under Time Warp, an anti-message flag).
type tsEvent struct {
	Event
	id   uint64
	anti bool
}

// tsBefore is the (At, id) total order on timestamped events.
func tsBefore(a, b *tsEvent) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.id < b.id
}

// tsHeap is an LP's pending-event queue: the shared generic heap
// (sim.Heap) under the tsBefore order, plus the minTS convenience this
// package's GVT rounds use. Both executors use it; Time Warp additionally
// needs Items/RemoveAt for anti-message annihilation.
type tsHeap struct {
	*sim.Heap[*tsEvent]
}

func newTSHeap() tsHeap { return tsHeap{sim.NewHeap(tsBefore)} }

const inf = math.MaxFloat64

// minTS returns the heap's minimum timestamp or +inf.
func (h tsHeap) minTS() float64 {
	if h.Len() == 0 {
		return inf
	}
	return h.Peek().At
}
