// Package value implements the dynamic value system shared by the MESSENGERS
// virtual machine, logical-node variables, and the PVM packing buffers.
//
// The MESSENGERS script language (MSL) is dynamically typed at the VM level,
// mirroring the paper's "subset of C" where all standard data types except
// pointers are supported. A Value is one of: integer, number (float64),
// string, byte block, array of values, or dense float64 matrix. Matrices and
// byte blocks exist so that the numeric workloads of the paper (block matrix
// multiplication, Mandelbrot pixel blocks) can be carried by Messengers and
// packed by PVM without boxing every element.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported kinds. KindNil is the zero Value (absent variable).
const (
	KindNil Kind = iota
	KindInt
	KindNum
	KindStr
	KindBytes
	KindArr
	KindMat
)

// String returns the MSL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindNum:
		return "num"
	case KindStr:
		return "str"
	case KindBytes:
		return "bytes"
	case KindArr:
		return "array"
	case KindMat:
		return "matrix"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Mat is a dense row-major matrix of float64.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zeroed r×c matrix.
func NewMat(r, c int) *Mat {
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of the matrix.
func (m *Mat) Clone() *Mat {
	d := make([]float64, len(m.Data))
	copy(d, m.Data)
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: d}
}

// Value is a dynamically typed MSL value. The zero Value is nil.
type Value struct {
	kind  Kind
	i     int64
	n     float64
	s     string
	bytes []byte
	arr   []Value
	mat   *Mat
}

// Nil returns the nil Value.
func Nil() Value { return Value{} }

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Num returns a floating-point Value.
func Num(f float64) Value { return Value{kind: KindNum, n: f} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindStr, s: s} }

// Bytes returns a byte-block Value. The slice is not copied.
func Bytes(b []byte) Value { return Value{kind: KindBytes, bytes: b} }

// Arr returns an array Value. The slice is not copied.
func Arr(vs []Value) Value { return Value{kind: KindArr, arr: vs} }

// Matrix returns a matrix Value. The matrix is not copied.
func Matrix(m *Mat) Value { return Value{kind: KindMat, mat: m} }

// Bool returns Int(1) or Int(0); MSL has no distinct boolean type, like C.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// Kind reports the dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is the nil Value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsInt returns the value as an int64, truncating numbers.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindNum:
		return int64(v.n)
	default:
		return 0
	}
}

// AsNum returns the value as a float64.
func (v Value) AsNum() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindNum:
		return v.n
	default:
		return 0
	}
}

// AsStr returns the string payload (empty for non-strings; use Format for a
// printable rendering of any value).
func (v Value) AsStr() string { return v.s }

// AsBytes returns the byte payload, or nil.
func (v Value) AsBytes() []byte { return v.bytes }

// AsArr returns the array payload, or nil.
func (v Value) AsArr() []Value { return v.arr }

// AsMat returns the matrix payload, or nil.
func (v Value) AsMat() *Mat { return v.mat }

// IsNumeric reports whether the value is an int or num.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindNum }

// Truthy implements C-style truth: nonzero numbers, nonempty strings,
// arrays, byte blocks, and matrices are true.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindNil:
		return false
	case KindInt:
		return v.i != 0
	case KindNum:
		return v.n != 0
	case KindStr:
		return v.s != ""
	case KindBytes:
		return len(v.bytes) > 0
	case KindArr:
		return len(v.arr) > 0
	case KindMat:
		return v.mat != nil && len(v.mat.Data) > 0
	default:
		return false
	}
}

// Len returns the element count for strings, byte blocks, and arrays, and
// Rows*Cols for matrices; 0 otherwise.
func (v Value) Len() int {
	switch v.kind {
	case KindStr:
		return len(v.s)
	case KindBytes:
		return len(v.bytes)
	case KindArr:
		return len(v.arr)
	case KindMat:
		if v.mat == nil {
			return 0
		}
		return len(v.mat.Data)
	default:
		return 0
	}
}

// Index returns element i of an array, byte block (as int), or matrix (as
// num, flat row-major). It returns nil and false when out of range or the
// value is not indexable.
func (v Value) Index(i int) (Value, bool) {
	switch v.kind {
	case KindArr:
		if i < 0 || i >= len(v.arr) {
			return Nil(), false
		}
		return v.arr[i], true
	case KindBytes:
		if i < 0 || i >= len(v.bytes) {
			return Nil(), false
		}
		return Int(int64(v.bytes[i])), true
	case KindMat:
		if v.mat == nil || i < 0 || i >= len(v.mat.Data) {
			return Nil(), false
		}
		return Num(v.mat.Data[i]), true
	case KindStr:
		if i < 0 || i >= len(v.s) {
			return Nil(), false
		}
		return Int(int64(v.s[i])), true
	default:
		return Nil(), false
	}
}

// SetIndex assigns element i in place for arrays, byte blocks, and matrices.
// It reports whether the assignment happened.
func (v Value) SetIndex(i int, x Value) bool {
	switch v.kind {
	case KindArr:
		if i < 0 || i >= len(v.arr) {
			return false
		}
		v.arr[i] = x
		return true
	case KindBytes:
		if i < 0 || i >= len(v.bytes) {
			return false
		}
		v.bytes[i] = byte(x.AsInt())
		return true
	case KindMat:
		if v.mat == nil || i < 0 || i >= len(v.mat.Data) {
			return false
		}
		v.mat.Data[i] = x.AsNum()
		return true
	default:
		return false
	}
}

// Clone returns a deep copy. Messenger replication on multi-link hops uses
// this so each replica owns its Messenger-variable area.
func (v Value) Clone() Value {
	switch v.kind {
	case KindBytes:
		b := make([]byte, len(v.bytes))
		copy(b, v.bytes)
		return Bytes(b)
	case KindArr:
		a := make([]Value, len(v.arr))
		for i := range v.arr {
			a[i] = v.arr[i].Clone()
		}
		return Arr(a)
	case KindMat:
		if v.mat == nil {
			return v
		}
		return Matrix(v.mat.Clone())
	default:
		return v
	}
}

// Equal reports deep equality. Int and Num compare numerically.
func (v Value) Equal(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return v.AsNum() == o.AsNum()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindStr:
		return v.s == o.s
	case KindBytes:
		if len(v.bytes) != len(o.bytes) {
			return false
		}
		for i := range v.bytes {
			if v.bytes[i] != o.bytes[i] {
				return false
			}
		}
		return true
	case KindArr:
		if len(v.arr) != len(o.arr) {
			return false
		}
		for i := range v.arr {
			if !v.arr[i].Equal(o.arr[i]) {
				return false
			}
		}
		return true
	case KindMat:
		if v.mat == nil || o.mat == nil {
			return v.mat == o.mat
		}
		if v.mat.Rows != o.mat.Rows || v.mat.Cols != o.mat.Cols {
			return false
		}
		for i := range v.mat.Data {
			if v.mat.Data[i] != o.mat.Data[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders two numeric or string values: -1, 0, or +1. The second
// result is false when the values are not comparable.
func (v Value) Compare(o Value) (int, bool) {
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsNum(), o.AsNum()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind == KindStr && o.kind == KindStr {
		return strings.Compare(v.s, o.s), true
	}
	return 0, false
}

// WireSize estimates the encoded size in bytes of the value. The simulated
// network charges transfer time by this size, so it approximates the codec's
// actual output (tag + payload).
func (v Value) WireSize() int {
	switch v.kind {
	case KindNil:
		return 1
	case KindInt, KindNum:
		return 9
	case KindStr:
		return 5 + len(v.s)
	case KindBytes:
		return 5 + len(v.bytes)
	case KindArr:
		n := 5
		for _, e := range v.arr {
			n += e.WireSize()
		}
		return n
	case KindMat:
		if v.mat == nil {
			return 9
		}
		return 9 + 8*len(v.mat.Data)
	default:
		return 1
	}
}

// Format renders the value for printing from MSL scripts.
func (v Value) Format() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindNum:
		if v.n == math.Trunc(v.n) && math.Abs(v.n) < 1e15 {
			return strconv.FormatFloat(v.n, 'f', 1, 64)
		}
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case KindStr:
		return v.s
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.bytes))
	case KindArr:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range v.arr {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.Format())
		}
		b.WriteByte(']')
		return b.String()
	case KindMat:
		if v.mat == nil {
			return "matrix(nil)"
		}
		return fmt.Sprintf("matrix(%dx%d)", v.mat.Rows, v.mat.Cols)
	default:
		return "?"
	}
}

// String implements fmt.Stringer with kind annotation, for debugging.
func (v Value) String() string {
	if v.kind == KindStr {
		return strconv.Quote(v.s)
	}
	return v.Format()
}
