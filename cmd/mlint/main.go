// mlint is the repository's own linter: it runs the internal/analysis
// suite over every package of the module and exits nonzero on findings.
//
//	mlint            # analyze the whole module (run from anywhere inside it)
//	mlint -list      # print the analyzer catalog and exit
//
// Findings print as path:line:col: message [analyzer]. A finding is
// silenced by a "//lint:<category>" comment on the offending line or the
// line above it, followed by a justification; docs/ANALYSIS.md documents
// each analyzer, its category, and when suppression is legitimate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"messengers/internal/analysis"
	"messengers/internal/analysis/analyzers"
)

// suite is the analyzer catalog, in output order.
var suite = []*analysis.Analyzer{
	analyzers.SimDeterminism,
	analyzers.StickyErr,
	analyzers.ObsNames,
	analyzers.LockHold,
	analyzers.VMDispatch,
	analyzers.KindSwitch,
}

func main() {
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	flag.Parse()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := repoRoot()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.ModulePackages(root)
	if err != nil {
		fatal(err)
	}

	loader := analysis.NewLoader(root)
	shared := map[string]any{}
	findings := 0
	for _, pkgPath := range pkgs {
		lp, err := loader.Load(analysis.PackageDir(root, pkgPath), pkgPath)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", pkgPath, err))
		}
		diags, err := analysis.RunAnalyzers(lp, suite, shared)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			rel, rerr := filepath.Rel(root, d.Pos.Filename)
			if rerr != nil {
				rel = d.Pos.Filename
			}
			fmt.Printf("%s:%d:%d: %s [%s]\n", rel, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("mlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mlint: %v\n", err)
	os.Exit(1)
}
